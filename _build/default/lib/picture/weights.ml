type t = { default_weight : float; table : (string, float) Hashtbl.t }

let create ?(default_weight = 1.) entries =
  let table = Hashtbl.create 16 in
  List.iter (fun (k, w) -> Hashtbl.replace table k w) entries;
  { default_weight; table }

let default = create []

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some w -> w
  | None -> t.default_weight

let term_key = function
  | Htl.Ast.Obj_attr (q, _) -> Some ("attr:" ^ q)
  | Htl.Ast.Seg_attr q -> Some ("attr:" ^ q)
  | Htl.Ast.Const _ | Htl.Ast.Attr_var _ -> None

let atom_key = function
  | Htl.Ast.True -> "true"
  | Htl.Ast.False -> "false"
  | Htl.Ast.Present _ -> "present"
  | Htl.Ast.Rel (r, _) -> "rel:" ^ r
  | Htl.Ast.Cmp (_, t1, t2) -> (
      match term_key t1 with
      | Some k -> k
      | None -> ( match term_key t2 with Some k -> k | None -> "cmp"))

let atom_weight t a = find t (atom_key a)

let rec total t (f : Htl.Ast.t) =
  match f with
  | Atom a -> atom_weight t a
  | And (f, g) -> total t f +. total t g
  | Exists (_, f) -> total t f
  | Freeze { body; _ } -> total t body
  | Or _ | Not _ | Next _ | Until _ | Eventually _ | At_level _ ->
      invalid_arg "Weights.total: not a non-temporal conjunctive formula"
