module Smap = Map.Make (String)

type t = { parent : string option Smap.t }

let empty = { parent = Smap.empty }

let mem t name = Smap.mem name t.parent

let add t ?parent name =
  if mem t name then invalid_arg (Printf.sprintf "Taxonomy.add: %S exists" name);
  (match parent with
  | Some p when not (mem t p) ->
      invalid_arg (Printf.sprintf "Taxonomy.add: unknown parent %S" p)
  | Some _ | None -> ());
  { parent = Smap.add name parent t.parent }

let of_edges edges =
  List.fold_left (fun t (parent, child) -> add t ?parent child) empty edges

let default =
  of_edges
    [
      (None, "thing");
      (Some "thing", "person");
      (Some "person", "man");
      (Some "person", "woman");
      (Some "thing", "vehicle");
      (Some "vehicle", "train");
      (Some "vehicle", "car");
      (Some "vehicle", "airplane");
      (Some "thing", "animal");
      (Some "animal", "horse");
      (Some "animal", "dog");
      (Some "thing", "weapon");
      (Some "weapon", "gun");
      (Some "weapon", "rifle");
      (Some "thing", "structure");
      (Some "structure", "building");
      (Some "structure", "bridge");
    ]

(* ancestors of [name] from itself up to the root, with distances *)
let ancestors t name =
  let rec go name d acc =
    let acc = (name, d) :: acc in
    match Smap.find_opt name t.parent with
    | Some (Some p) -> go p (d + 1) acc
    | Some None | None -> acc
  in
  go name 0 []

let is_subtype t ~sub ~super =
  String.equal sub super
  || (mem t sub && List.exists (fun (a, _) -> String.equal a super) (ancestors t sub))

let similarity t ~asked ~found =
  if String.equal asked found then 1.
  else if not (mem t asked && mem t found) then 0.
  else if is_subtype t ~sub:found ~super:asked then 1.
  else
    let up_f = ancestors t found in
    let best = ref None in
    List.iter
      (fun (a, da) ->
        match List.assoc_opt a up_f with
        | Some df -> (
            let cost = da + df in
            match !best with
            | Some b when b <= cost -> ()
            | _ -> best := Some cost)
        | None -> ())
      (ancestors t asked);
    match !best with
    | None -> 0.
    | Some cost -> Float.pow 2. (-.float_of_int cost)
