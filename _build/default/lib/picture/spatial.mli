(** Spatial relationships, either stored explicitly in the meta-data or
    derived from object bounding boxes (the spatial indices of [26, 27]). *)

val derived : string list
(** Relation names this module can derive from bounding boxes:
    [left_of], [right_of], [above], [below], [overlaps], [inside]. *)

val holds : Metadata.Seg_meta.t -> string -> int list -> bool
(** [holds meta r args]: true when the relationship is stored explicitly,
    or when [r] is a derivable binary spatial relation and the objects'
    bounding boxes satisfy it. *)
