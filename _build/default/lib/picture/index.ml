type t = {
  level : int;
  segment_count : int;
  by_object : (int, int list) Hashtbl.t;
  by_type : (string, int list) Hashtbl.t;
  by_relationship : (string, int list) Hashtbl.t;
}

let add_posting tbl key seg =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  (* segments are scanned in increasing id order; store reversed *)
  match prev with
  | s :: _ when s = seg -> ()
  | _ -> Hashtbl.replace tbl key (seg :: prev)

let build store ~level =
  let n = Video_model.Store.count_at store ~level in
  let t =
    {
      level;
      segment_count = n;
      by_object = Hashtbl.create 64;
      by_type = Hashtbl.create 64;
      by_relationship = Hashtbl.create 16;
    }
  in
  for id = 1 to n do
    let meta = Video_model.Store.meta store ~level ~id in
    List.iter
      (fun (o : Metadata.Entity.t) ->
        add_posting t.by_object o.id id;
        add_posting t.by_type o.otype id)
      meta.Metadata.Seg_meta.objects;
    List.iter
      (fun (r : Metadata.Relationship.t) ->
        add_posting t.by_relationship r.name id)
      meta.Metadata.Seg_meta.relationships
  done;
  t

let postings tbl key =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt tbl key))

let segments_of_object t oid = postings t.by_object oid
let segments_of_type t name = postings t.by_type name
let segments_of_relationship t name = postings t.by_relationship name

let objects_at_level t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.by_object [])

let level t = t.level
let segment_count t = t.segment_count
