let derived = [ "left_of"; "right_of"; "above"; "below"; "overlaps"; "inside" ]

let derive name (a : Metadata.Bbox.t) (b : Metadata.Bbox.t) =
  match name with
  | "left_of" -> Metadata.Bbox.left_of a b
  | "right_of" -> Metadata.Bbox.left_of b a
  | "above" -> Metadata.Bbox.above a b
  | "below" -> Metadata.Bbox.above b a
  | "overlaps" -> Metadata.Bbox.overlaps a b
  | "inside" -> Metadata.Bbox.inside a b
  | _ -> false

let holds meta name args =
  Metadata.Seg_meta.has_relationship meta name args
  ||
  match args with
  | [ x; y ] when List.mem name derived -> (
      match (Metadata.Seg_meta.find_object meta x, Metadata.Seg_meta.find_object meta y) with
      | Some ox, Some oy -> (
          match (ox.Metadata.Entity.bbox, oy.Metadata.Entity.bbox) with
          | Some ba, Some bb -> derive name ba bb
          | _, _ -> false)
      | _, _ -> false)
  | _ -> false
