(** Inverted indices over one level of the video store, as used by the
    picture retrieval system to find candidate segments for the conditions
    of a query ([27] §"indices on spatial relationships"). *)

type t

val build : Video_model.Store.t -> level:int -> t

val segments_of_object : t -> int -> int list
(** Sorted global ids of the segments containing the object. *)

val segments_of_type : t -> string -> int list
(** Segments containing at least one object of exactly this type. *)

val segments_of_relationship : t -> string -> int list
(** Segments storing at least one relationship with this name. *)

val objects_at_level : t -> int list
(** Sorted universal object ids present in at least one segment. *)

val level : t -> int
val segment_count : t -> int
