lib/engine/sql_backend.mli: Context Htl Relational Simlist
