lib/engine/sql_backend.ml: Atomic Context Direct Format Htl List Printf Reference Relational Simlist
