lib/engine/topk.mli: Format Simlist
