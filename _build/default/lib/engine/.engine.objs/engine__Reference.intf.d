lib/engine/reference.mli: Context Htl Simlist
