lib/engine/atomic.ml: Context Format Htl List Picture Simlist
