lib/engine/topk.ml: Float Format List Simlist
