lib/engine/atomic.mli: Context Htl Simlist
