lib/engine/query.mli: Context Htl Simlist
