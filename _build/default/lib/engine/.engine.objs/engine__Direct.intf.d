lib/engine/direct.mli: Context Htl Simlist
