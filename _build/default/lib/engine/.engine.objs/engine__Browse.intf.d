lib/engine/browse.mli: Simlist Video_model
