lib/engine/context.mli: Picture Simlist Video_model
