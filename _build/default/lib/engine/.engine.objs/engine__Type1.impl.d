lib/engine/type1.ml: Atomic Context Format Htl Simlist
