lib/engine/browse.ml: Context Float List Query Simlist Video_model
