lib/engine/reference.ml: Array Atomic Context Float Format Htl List Metadata Picture Simlist Video_model
