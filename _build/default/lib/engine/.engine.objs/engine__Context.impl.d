lib/engine/context.ml: Picture Simlist Video_model
