lib/engine/direct.ml: Atomic Context Format Hashtbl Htl List Metadata Option Picture Simlist Video_model
