lib/engine/query.ml: Array Atomic Context Direct Format Htl Reference Simlist Sql_backend Topk Type1
