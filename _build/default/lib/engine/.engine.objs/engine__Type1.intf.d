lib/engine/type1.mli: Context Htl Simlist
