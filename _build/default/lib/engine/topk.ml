module Sim_list = Simlist.Sim_list
module Sim = Simlist.Sim
module Interval = Simlist.Interval

let ranked_intervals list =
  List.sort
    (fun (i1, v1) (i2, v2) ->
      match Float.compare v2 v1 with
      | 0 -> Interval.compare i1 i2
      | c -> c)
    (Sim_list.entries list)

let top_k list ~k =
  let max = Sim_list.max_sim list in
  let rec expand acc = function
    | [] -> acc
    | (iv, v) :: tl ->
        let ids =
          List.init (Interval.length iv) (fun i -> Interval.lo iv + i)
        in
        expand
          (List.rev_append (List.map (fun id -> (id, v)) ids) acc)
          tl
  in
  let all = expand [] (Sim_list.entries list) in
  let sorted =
    List.sort
      (fun (id1, v1) (id2, v2) ->
        match Float.compare v2 v1 with 0 -> compare id1 id2 | c -> c)
      all
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (id, v) :: tl -> (id, Sim.make ~actual:v ~max) :: take (n - 1) tl
  in
  take k sorted

let pp_table ?(header = ("Start", "End", "Sim")) ppf list =
  let s, e, v = header in
  Format.fprintf ppf "@[<v>%-8s %-8s %s@," s e v;
  List.iter
    (fun (iv, act) ->
      Format.fprintf ppf "%-8d %-8d %.6f@," (Interval.lo iv)
        (Interval.hi iv) act)
    (ranked_intervals list);
  Format.fprintf ppf "@]"
