(** Resolution of atomic (maximal non-temporal) subformulas to similarity
    tables: precomputed tables are looked up by nullary predicate name,
    everything else goes through the picture retrieval substrate. *)

exception Unsupported of string

val named_table : Context.t -> Htl.Ast.t -> Simlist.Sim_table.t option
(** The precomputed table when the formula is a bare predicate of a known
    name. *)

val resolve : Context.t -> Htl.Ast.t -> Simlist.Sim_table.t
(** @raise Unsupported when the formula is a named table reference that
    is unknown and no store is configured, or when the picture system
    rejects it. *)

val max_of : Context.t -> Htl.Ast.t -> float
(** Maximum similarity of an atomic unit (the table max without building
    the table when possible). *)
