(** Naive reference implementation of the similarity semantics (§2.5),
    computed directly from the definitions one segment at a time —
    exponential in the worst case, used as the oracle the efficient
    algorithms are property-tested against. *)

exception Unsupported of string

val max_similarity : Context.t -> Htl.Ast.t -> float
(** The formula's maximum similarity [m] (a function of the formula
    only). *)

val similarity_at :
  Context.t ->
  span:Simlist.Interval.t ->
  pos:int ->
  Htl.Ast.t ->
  Simlist.Sim.t
(** Similarity of a closed formula at position [pos] of the proper
    sequence covering [span] at the context's level. *)

val similarity_over_level : Context.t -> Htl.Ast.t -> Simlist.Sim.t array
(** Similarity at every segment of the context's level (index = id - 1),
    sequences given by the context's extents. *)
