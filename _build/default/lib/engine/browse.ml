exception Error of string

let rank_videos ?(threshold = 0.5) store query =
  let ctx = Context.of_store ~threshold ~level:1 store in
  let list =
    try Query.run_string ctx query
    with Query.Error msg -> raise (Error msg)
  in
  let videos = Video_model.Store.videos store in
  let scored =
    List.mapi
      (fun vidx (v : Video_model.Video.t) ->
        let root =
          Simlist.Interval.lo (Video_model.Store.video_span store ~video:vidx ~level:1)
        in
        (vidx, v.title, Simlist.Sim_list.sim_at list root))
      videos
  in
  List.filter (fun (_, _, s) -> Simlist.Sim.actual s > 0.) scored
  |> List.stable_sort (fun (_, _, a) (_, _, b) ->
         Float.compare (Simlist.Sim.actual b) (Simlist.Sim.actual a))
