open Htl.Ast
module Sim_list = Simlist.Sim_list
module Sim_table = Simlist.Sim_table

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let rec eval (ctx : Context.t) f =
  if is_non_temporal f then begin
    if free_obj_vars f <> [] || free_attr_vars f <> [] then
      unsupported "type (1) requires closed atomic units: %s"
        (Htl.Pretty.to_string f);
    Sim_table.project_exists (Atomic.resolve ctx f)
  end
  else
    match f with
    | And (g, h) ->
        Sim_list.conjunction_mode ctx.conj_mode (eval ctx g) (eval ctx h)
    | Until (g, h) ->
        Sim_list.until_merge ~threshold:ctx.threshold ~extents:ctx.extents
          (eval ctx g) (eval ctx h)
    | Next g -> Sim_list.next_shift ~extents:ctx.extents (eval ctx g)
    | Eventually g -> Sim_list.eventually ~extents:ctx.extents (eval ctx g)
    | Or _ | Not _ | Exists _ | Freeze _ | At_level _ ->
        unsupported "not a type (1) construct: %s" (Htl.Pretty.to_string f)
    | Atom _ -> assert false (* atoms are non-temporal *)
