(** Browsing (§2.1/§2.2): "if the information provided in the query
    pertains to the upper levels only, then the user is interested in
    browsing" — e.g. {e western movies starring John Wayne}.  A browsing
    query is evaluated at the root level and ranks whole videos. *)

exception Error of string

val rank_videos :
  ?threshold:float ->
  Video_model.Store.t ->
  string ->
  (int * string * Simlist.Sim.t) list
(** [rank_videos store query] parses [query], evaluates it at level 1 of
    every video, and returns [(video index, title, similarity)] sorted by
    decreasing similarity; videos with zero similarity are omitted.
    Level modal operators let the query reach below the root.
    @raise Error on syntax errors or unsupported formulas. *)
