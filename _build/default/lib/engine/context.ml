type t = {
  store : Video_model.Store.t option;
  picture_config : Picture.Retrieval.config;
  tables : (string * Simlist.Sim_table.t) list;
  threshold : float;
  conj_mode : Simlist.Sim_list.conj_mode;
  reorder_joins : bool;
  level : int;
  extents : Simlist.Extent.t;
}

let of_store ?(config = Picture.Retrieval.default_config) ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false)
    ?(tables = []) ?level store =
  let level =
    match level with Some l -> l | None -> Video_model.Store.levels store
  in
  {
    store = Some store;
    picture_config = config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level;
    extents = Video_model.Store.extents_at store ~level;
  }

let of_tables ?(threshold = 0.5)
    ?(conj_mode = Simlist.Sim_list.Weighted_sum) ?(reorder_joins = false) ~n
    ?extents tables =
  let extents =
    match extents with Some e -> e | None -> Simlist.Extent.single n
  in
  {
    store = None;
    picture_config = Picture.Retrieval.default_config;
    tables;
    threshold;
    conj_mode;
    reorder_joins;
    level = 1;
    extents;
  }

let with_level t ~level ~extents = { t with level; extents }
let segment_count t = Simlist.Extent.total t.extents
