type item =
  | Star
  | Item of Expr.t * string option
  | Agg_item of Plan.agg * string option
  | Rownum_item of string option

type select = {
  distinct : bool;
  items : item list;
  from : (string * string) option;
  joins : (string * string * Expr.t) list;
  where : Expr.t option;
  group_by : Expr.t list;
  order_by : (Expr.t * Plan.order) list;
  limit : int option;
}

type query = select list

type stmt =
  | Create_table of string * string list
  | Create_table_as of string * query
  | Insert of string * Value.t list list
  | Drop_table of { name : string; if_exists : bool }
  | Select_stmt of query

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* --- lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | KW of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "JOIN"; "ON"; "WHERE"; "GROUP"; "BY";
    "ORDER"; "ASC"; "DESC"; "LIMIT"; "CREATE"; "TABLE"; "AS"; "INSERT";
    "INTO"; "VALUES"; "DROP"; "IF"; "EXISTS"; "AND"; "OR"; "NOT"; "BETWEEN";
    "NULL"; "COALESCE"; "MIN"; "MAX"; "SUM"; "COUNT"; "ROWNUM"; "UNION";
    "ALL";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let out = ref [] in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let cur () = peek 0 in
  let emit t = out := t :: !out in
  while !pos < n do
    match cur () with
    | None -> pos := n
    | Some (' ' | '\t' | '\n' | '\r') -> incr pos
    | Some '-' when peek 1 = Some '-' ->
        (* comment to end of line *)
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done
    | Some c when is_ident_start c ->
        let start = !pos in
        while !pos < n && (is_ident_char src.[!pos] || src.[!pos] = '.') do
          incr pos
        done;
        let word = String.sub src start (!pos - start) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords && not (String.contains word '.') then
          emit (KW upper)
        else emit (IDENT word)
    | Some c when is_digit c ->
        let start = !pos in
        let is_float = ref false in
        while
          !pos < n
          &&
          match src.[!pos] with
          | c when is_digit c -> true
          | '.' | 'e' | 'E' ->
              is_float := true;
              true
          | '+' | '-' ->
              !pos > start && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')
          | _ -> false
        do
          incr pos
        done;
        let text = String.sub src start (!pos - start) in
        if !is_float then
          match float_of_string_opt text with
          | Some f -> emit (FLOAT f)
          | None -> fail "bad float literal %S" text
        else (
          match int_of_string_opt text with
          | Some i -> emit (INT i)
          | None -> fail "bad integer literal %S" text)
    | Some '\'' ->
        incr pos;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          match cur () with
          | None -> fail "unterminated string literal"
          | Some '\'' when peek 1 = Some '\'' ->
              Buffer.add_char buf '\'';
              pos := !pos + 2
          | Some '\'' ->
              incr pos;
              closed := true
          | Some c ->
              Buffer.add_char buf c;
              incr pos
        done;
        emit (STRING (Buffer.contents buf))
    | Some '(' -> incr pos; emit LPAREN
    | Some ')' -> incr pos; emit RPAREN
    | Some ',' -> incr pos; emit COMMA
    | Some ';' -> incr pos; emit SEMI
    | Some '*' -> incr pos; emit STAR
    | Some '+' -> incr pos; emit PLUS
    | Some '-' -> incr pos; emit MINUS
    | Some '/' -> incr pos; emit SLASH
    | Some '=' -> incr pos; emit EQ
    | Some '!' when peek 1 = Some '=' -> pos := !pos + 2; emit NE
    | Some '<' when peek 1 = Some '>' -> pos := !pos + 2; emit NE
    | Some '<' when peek 1 = Some '=' -> pos := !pos + 2; emit LE
    | Some '<' -> incr pos; emit LT
    | Some '>' when peek 1 = Some '=' -> pos := !pos + 2; emit GE
    | Some '>' -> incr pos; emit GT
    | Some c -> fail "unexpected character %C" c
  done;
  emit EOF;
  List.rev !out

(* --- parser -------------------------------------------------------------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | KW s -> Format.fprintf ppf "'%s'" s
  | INT n -> Format.fprintf ppf "%d" n
  | FLOAT f -> Format.fprintf ppf "%g" f
  | STRING s -> Format.fprintf ppf "'%s'" s
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | EQ -> Format.pp_print_string ppf "'='"
  | NE -> Format.pp_print_string ppf "'!='"
  | LT -> Format.pp_print_string ppf "'<'"
  | LE -> Format.pp_print_string ppf "'<='"
  | GT -> Format.pp_print_string ppf "'>'"
  | GE -> Format.pp_print_string ppf "'>='"
  | EOF -> Format.pp_print_string ppf "end of input"

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s but found %a" what pp_token (peek st)

let expect_kw st kw = expect st (KW kw) (Printf.sprintf "'%s'" kw)

let expect_ident st what =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t -> fail "expected %s but found %a" what pp_token t

(* expressions *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = KW "OR" then begin
    advance st;
    Expr.Binop (Expr.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = KW "AND" then begin
    advance st;
    Expr.Binop (Expr.And, left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = KW "NOT" then begin
    advance st;
    Expr.Not (parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let left = parse_add st in
  match peek st with
  | EQ -> advance st; Expr.Binop (Expr.Eq, left, parse_add st)
  | NE -> advance st; Expr.Binop (Expr.Ne, left, parse_add st)
  | LT -> advance st; Expr.Binop (Expr.Lt, left, parse_add st)
  | LE -> advance st; Expr.Binop (Expr.Le, left, parse_add st)
  | GT -> advance st; Expr.Binop (Expr.Gt, left, parse_add st)
  | GE -> advance st; Expr.Binop (Expr.Ge, left, parse_add st)
  | KW "BETWEEN" ->
      advance st;
      let lo = parse_add st in
      expect_kw st "AND";
      let hi = parse_add st in
      Expr.Between (left, lo, hi)
  | _ -> left

and parse_add st =
  let rec loop left =
    match peek st with
    | PLUS ->
        advance st;
        loop (Expr.Binop (Expr.Add, left, parse_mul st))
    | MINUS ->
        advance st;
        loop (Expr.Binop (Expr.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | STAR ->
        advance st;
        loop (Expr.Binop (Expr.Mul, left, parse_primary st))
    | SLASH ->
        advance st;
        loop (Expr.Binop (Expr.Div, left, parse_primary st))
    | _ -> left
  in
  loop (parse_primary st)

and parse_primary st =
  match peek st with
  | INT n -> advance st; Expr.Lit (Value.Int n)
  | FLOAT f -> advance st; Expr.Lit (Value.Float f)
  | STRING s -> advance st; Expr.Lit (Value.Str s)
  | KW "NULL" -> advance st; Expr.Lit Value.Null
  | MINUS ->
      advance st;
      Expr.Binop (Expr.Sub, Expr.Lit (Value.Int 0), parse_primary st)
  | KW "COALESCE" ->
      advance st;
      expect st LPAREN "'('";
      let rec args acc =
        let e = parse_expr st in
        if peek st = COMMA then begin
          advance st;
          args (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let es = args [] in
      expect st RPAREN "')'";
      Expr.Coalesce es
  | IDENT name -> advance st; Expr.Col name
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "')'";
      e
  | t -> fail "expected an expression but found %a" pp_token t

(* select items *)

let parse_alias st =
  if peek st = KW "AS" then begin
    advance st;
    Some (expect_ident st "column alias")
  end
  else None

let parse_item st =
  match peek st with
  | STAR -> advance st; Star
  | KW (("MIN" | "MAX" | "SUM" | "COUNT") as fn) ->
      advance st;
      expect st LPAREN "'('";
      let agg =
        if fn = "COUNT" && peek st = STAR then begin
          advance st;
          Plan.Count_star
        end
        else
          let e = parse_expr st in
          match fn with
          | "MIN" -> Plan.Min e
          | "MAX" -> Plan.Max e
          | "SUM" -> Plan.Sum e
          | "COUNT" -> Plan.Count e
          | _ -> assert false
      in
      expect st RPAREN "')'";
      Agg_item (agg, parse_alias st)
  | KW "ROWNUM" ->
      advance st;
      expect st LPAREN "'('";
      expect st RPAREN "')'";
      Rownum_item (parse_alias st)
  | _ ->
      let e = parse_expr st in
      Item (e, parse_alias st)

let rec parse_items st acc =
  let item = parse_item st in
  if peek st = COMMA then begin
    advance st;
    parse_items st (item :: acc)
  end
  else List.rev (item :: acc)

let parse_table_ref st =
  let name = expect_ident st "table name" in
  match peek st with
  | IDENT alias ->
      advance st;
      (name, alias)
  | _ -> (name, name)

let rec parse_select st =
  expect_kw st "SELECT";
  let distinct =
    if peek st = KW "DISTINCT" then begin
      advance st;
      true
    end
    else false
  in
  let items = parse_items st [] in
  let from, joins =
    if peek st = KW "FROM" then begin
      advance st;
      let base = parse_table_ref st in
      let rec join_loop acc =
        if peek st = KW "JOIN" then begin
          advance st;
          let name, alias = parse_table_ref st in
          expect_kw st "ON";
          let cond = parse_expr st in
          join_loop ((name, alias, cond) :: acc)
        end
        else List.rev acc
      in
      (Some base, join_loop [])
    end
    else (None, [])
  in
  let where =
    if peek st = KW "WHERE" then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  let group_by =
    if peek st = KW "GROUP" then begin
      advance st;
      expect_kw st "BY";
      let rec exprs acc =
        let e = parse_expr st in
        if peek st = COMMA then begin
          advance st;
          exprs (e :: acc)
        end
        else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let order_by =
    if peek st = KW "ORDER" then begin
      advance st;
      expect_kw st "BY";
      let rec keys acc =
        let e = parse_expr st in
        let ord =
          match peek st with
          | KW "ASC" -> advance st; Plan.Asc
          | KW "DESC" -> advance st; Plan.Desc
          | _ -> Plan.Asc
        in
        if peek st = COMMA then begin
          advance st;
          keys ((e, ord) :: acc)
        end
        else List.rev ((e, ord) :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if peek st = KW "LIMIT" then begin
      advance st;
      match peek st with
      | INT n -> advance st; Some n
      | t -> fail "expected a row count but found %a" pp_token t
    end
    else None
  in
  { distinct; items; from; joins; where; group_by; order_by; limit }

and parse_query st =
  let first = parse_select st in
  let rec unions acc =
    if peek st = KW "UNION" then begin
      advance st;
      expect_kw st "ALL";
      unions (parse_select st :: acc)
    end
    else List.rev acc
  in
  unions [ first ]

and parse_stmt st =
  match peek st with
  | KW "SELECT" -> Select_stmt (parse_query st)
  | KW "CREATE" ->
      advance st;
      expect_kw st "TABLE";
      let name = expect_ident st "table name" in
      if peek st = KW "AS" then begin
        advance st;
        Create_table_as (name, parse_query st)
      end
      else begin
        expect st LPAREN "'('";
        let rec cols acc =
          let c = expect_ident st "column name" in
          if peek st = COMMA then begin
            advance st;
            cols (c :: acc)
          end
          else List.rev (c :: acc)
        in
        let cs = cols [] in
        expect st RPAREN "')'";
        Create_table (name, cs)
      end
  | KW "INSERT" ->
      advance st;
      expect_kw st "INTO";
      let name = expect_ident st "table name" in
      expect_kw st "VALUES";
      let parse_tuple () =
        expect st LPAREN "'('";
        let rec vals acc =
          let v =
            match peek st with
            | INT n -> advance st; Value.Int n
            | FLOAT f -> advance st; Value.Float f
            | STRING s -> advance st; Value.Str s
            | KW "NULL" -> advance st; Value.Null
            | MINUS -> (
                advance st;
                match peek st with
                | INT n -> advance st; Value.Int (-n)
                | FLOAT f -> advance st; Value.Float (-.f)
                | t -> fail "expected a number but found %a" pp_token t)
            | t -> fail "expected a literal but found %a" pp_token t
          in
          if peek st = COMMA then begin
            advance st;
            vals (v :: acc)
          end
          else List.rev (v :: acc)
        in
        let vs = vals [] in
        expect st RPAREN "')'";
        vs
      in
      let rec tuples acc =
        let t = parse_tuple () in
        if peek st = COMMA then begin
          advance st;
          tuples (t :: acc)
        end
        else List.rev (t :: acc)
      in
      Insert (name, tuples [])
  | KW "DROP" ->
      advance st;
      expect_kw st "TABLE";
      let if_exists =
        if peek st = KW "IF" then begin
          advance st;
          expect_kw st "EXISTS";
          true
        end
        else false
      in
      Drop_table { name = expect_ident st "table name"; if_exists }
  | t -> fail "expected a statement but found %a" pp_token t

let parse src =
  let st = { toks = tokenize src } in
  let rec loop acc =
    match peek st with
    | EOF -> List.rev acc
    | SEMI ->
        advance st;
        loop acc
    | _ ->
        let s = parse_stmt st in
        (match peek st with
        | SEMI | EOF -> ()
        | t -> fail "expected ';' but found %a" pp_token t);
        loop (s :: acc)
  in
  loop []

(* --- planning ------------------------------------------------------------ *)

let rec conjuncts = function
  | Expr.Binop (Expr.And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(* alias a qualified column reference belongs to, when syntactically
   obvious *)
let col_side = function
  | Expr.Col name -> (
      match String.index_opt name '.' with
      | Some i -> Some (String.sub name 0 i)
      | None -> None)
  | _ -> None

let rec expr_aliases acc = function
  | Expr.Col _ as c -> (
      match col_side c with Some a -> a :: acc | None -> acc)
  | Expr.Lit _ -> acc
  | Expr.Binop (_, a, b) -> expr_aliases (expr_aliases acc a) b
  | Expr.Not a -> expr_aliases acc a
  | Expr.Coalesce es -> List.fold_left expr_aliases acc es
  | Expr.Between (a, b, c) ->
      expr_aliases (expr_aliases (expr_aliases acc a) b) c

let plan_join left_plan left_aliases (name, alias, cond) =
  let right_plan = Plan.Alias (alias, Plan.Scan name) in
  let side e =
    let aliases = List.sort_uniq String.compare (expr_aliases [] e) in
    match aliases with
    | [] -> `Unknown
    | _ when List.for_all (fun a -> a = alias) aliases -> `Right
    | _ when List.for_all (fun a -> List.mem a left_aliases) aliases -> `Left
    | _ -> `Mixed
  in
  let cs = conjuncts cond in
  let equi, band, rest =
    List.fold_left
      (fun (equi, band, rest) c ->
        match c with
        | Expr.Binop (Expr.Eq, a, b) -> (
            match (side a, side b) with
            | `Left, `Right -> ((a, b) :: equi, band, rest)
            | `Right, `Left -> ((b, a) :: equi, band, rest)
            | _ -> (equi, band, c :: rest))
        | Expr.Between (x, lo, hi) -> (
            match (side x, side lo, side hi) with
            | `Left, `Right, `Right -> (equi, (`Lp, x, lo, hi) :: band, rest)
            | `Right, `Left, `Left -> (equi, (`Rp, x, lo, hi) :: band, rest)
            | _ -> (equi, band, c :: rest))
        | c -> (equi, band, c :: rest))
      ([], [], []) cs
  in
  let joined =
    match (equi, band) with
    | (_ :: _ as pairs), _ ->
        (* prefer the hash join; any band conditions go to the filter *)
        let band_exprs =
          List.map (fun (_, x, lo, hi) -> Expr.Between (x, lo, hi)) band
        in
        let base =
          Plan.Hash_join
            {
              left = left_plan;
              right = right_plan;
              left_keys = List.map fst pairs;
              right_keys = List.map snd pairs;
            }
        in
        List.fold_left (fun p c -> Plan.Select (c, p)) base (band_exprs @ rest)
    | [], (`Lp, x, lo, hi) :: more ->
        let base =
          Plan.Band_join
            { points = left_plan; point = x; intervals = right_plan; lo; hi }
        in
        let more_exprs =
          List.map (fun (_, x, lo, hi) -> Expr.Between (x, lo, hi)) more
        in
        List.fold_left (fun p c -> Plan.Select (c, p)) base (more_exprs @ rest)
    | [], (`Rp, x, lo, hi) :: more ->
        let base =
          Plan.Band_join
            { points = right_plan; point = x; intervals = left_plan; lo; hi }
        in
        let more_exprs =
          List.map (fun (_, x, lo, hi) -> Expr.Between (x, lo, hi)) more
        in
        List.fold_left (fun p c -> Plan.Select (c, p)) base (more_exprs @ rest)
    | [], [] ->
        Plan.Nested_join { left = left_plan; right = right_plan; cond }
  in
  (joined, alias :: left_aliases)

let base_name c =
  match String.rindex_opt c '.' with
  | Some i -> String.sub c (i + 1) (String.length c - i - 1)
  | None -> c

let item_name i = function
  | Star -> assert false
  | Item (Expr.Col c, None) -> base_name c
  | Item (_, Some n) | Agg_item (_, Some n) | Rownum_item (Some n) -> n
  | Item (_, None) -> Printf.sprintf "col%d" i
  | Agg_item (_, None) -> Printf.sprintf "agg%d" i
  | Rownum_item None -> "rownum"

let plan_select (q : select) =
  let source =
    match q.from with
    | None -> Plan.Values ([], [ [||] ])
    | Some (name, alias) ->
        let base = Plan.Alias (alias, Plan.Scan name) in
        let plan, _ =
          List.fold_left
            (fun (p, aliases) j -> plan_join p aliases j)
            (base, [ alias ]) q.joins
        in
        plan
  in
  let filtered =
    match q.where with None -> source | Some c -> Plan.Select (c, source)
  in
  let has_agg =
    List.exists (function Agg_item _ -> true | _ -> false) q.items
  in
  let has_rownum =
    List.exists (function Rownum_item _ -> true | _ -> false) q.items
  in
  if has_rownum && (has_agg || q.group_by <> []) then
    fail "ROWNUM() cannot be combined with aggregation";
  let order_consumed = ref false in
  let projected =
    if has_agg || q.group_by <> [] then begin
      (* name group keys k0, k1, ...; aggregates a0, a1, ... *)
      let keys = List.mapi (fun i e -> (e, Printf.sprintf "k%d" i)) q.group_by in
      let aggs =
        List.concat
          (List.mapi
             (fun i -> function
               | Agg_item (a, _) -> [ (a, Printf.sprintf "a%d" i) ]
               | _ -> [])
             q.items)
      in
      let grouped = Plan.Group_by { keys; aggs; input = filtered } in
      let items =
        List.mapi
          (fun i it ->
            match it with
            | Star -> fail "SELECT * cannot be combined with GROUP BY"
            | Agg_item (_, _) ->
                (Expr.Col (Printf.sprintf "a%d" i), item_name i it)
            | Item (e, _) -> (
                match
                  List.find_opt (fun (ke, _) -> ke = e) keys
                with
                | Some (_, kname) -> (Expr.Col kname, item_name i it)
                | None ->
                    fail
                      "select item %a does not appear in GROUP BY"
                      Expr.pp e)
            | Rownum_item _ -> assert false)
          q.items
      in
      Plan.Project (items, grouped)
    end
    else if has_rownum then begin
      let sorted =
        match q.order_by with
        | [] -> fail "ROWNUM() requires ORDER BY"
        | keys -> Plan.Sort (keys, filtered)
      in
      let numbered = Plan.Row_num ("__rownum", sorted) in
      let items =
        List.mapi
          (fun i it ->
            match it with
            | Star -> fail "SELECT * cannot be combined with ROWNUM()"
            | Item (e, _) -> (e, item_name i it)
            | Rownum_item _ -> (Expr.Col "__rownum", item_name i it)
            | Agg_item _ -> assert false)
          q.items
      in
      Plan.Project (items, numbered)
    end
    else if List.for_all (fun it -> it = Star) q.items && q.items <> [] then
      filtered
    else begin
      let items =
        List.mapi
          (fun i it ->
            match it with
            | Star -> fail "mixing * with other select items is unsupported"
            | Item (e, _) -> (e, item_name i it)
            | Agg_item _ | Rownum_item _ -> assert false)
          q.items
      in
      (* ORDER BY keys that are not plain output-column references must be
         evaluated against the pre-projection columns *)
      let output_names = List.map snd items in
      let sorts_after =
        List.for_all
          (fun (e, _) ->
            match e with
            | Expr.Col c -> List.mem c output_names
            | _ -> false)
          q.order_by
      in
      if q.order_by = [] || sorts_after then Plan.Project (items, filtered)
      else begin
        order_consumed := true;
        Plan.Project (items, Plan.Sort (q.order_by, filtered))
      end
    end
  in
  let dedup = if q.distinct then Plan.Distinct projected else projected in
  let ordered =
    match (q.order_by, has_rownum || !order_consumed) with
    | [], _ | _, true -> dedup (* the sort already happened upstream *)
    | keys, false -> Plan.Sort (keys, dedup)
  in
  match q.limit with None -> ordered | Some n -> Plan.Limit (n, ordered)

let plan_query = function
  | [] -> raise (Error "empty query")
  | first :: rest ->
      List.fold_left
        (fun acc sel -> Plan.Union_all (acc, plan_select sel))
        (plan_select first) rest

let pp_stmt ppf = function
  | Create_table (n, cols) ->
      Format.fprintf ppf "CREATE TABLE %s (%s)" n (String.concat ", " cols)
  | Create_table_as (n, _) -> Format.fprintf ppf "CREATE TABLE %s AS SELECT ..." n
  | Insert (n, rows) ->
      Format.fprintf ppf "INSERT INTO %s (%d rows)" n (List.length rows)
  | Drop_table { name; if_exists } ->
      Format.fprintf ppf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") name
  | Select_stmt _ -> Format.fprintf ppf "SELECT ..."
