lib/relational/catalog.mli: Sql Table
