lib/relational/sql.mli: Expr Format Plan Value
