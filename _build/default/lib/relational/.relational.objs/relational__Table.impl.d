lib/relational/table.ml: Array Format List Printf String Value
