lib/relational/value.ml: Float Format String
