lib/relational/plan.mli: Expr Table Value
