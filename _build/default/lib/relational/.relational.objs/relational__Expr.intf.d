lib/relational/expr.mli: Format Value
