lib/relational/sql.ml: Buffer Expr Format List Plan Printf String Value
