lib/relational/table.mli: Format Value
