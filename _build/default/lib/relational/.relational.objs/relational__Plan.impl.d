lib/relational/plan.ml: Array Expr Hashtbl List Table Value
