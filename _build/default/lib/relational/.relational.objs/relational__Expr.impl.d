lib/relational/expr.ml: Array Format List Stdlib Table Value
