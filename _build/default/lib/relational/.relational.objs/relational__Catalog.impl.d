lib/relational/catalog.ml: Array Hashtbl List Plan Printf Sql String Table
