type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type t =
  | Col of string
  | Lit of Value.t
  | Binop of binop * t * t
  | Not of t
  | Coalesce of t list
  | Between of t * t * t

let col c = Col c
let int n = Lit (Value.Int n)
let str s = Lit (Value.Str s)

module Infix = struct
  let ( = ) a b = Binop (Eq, a, b)
  let ( && ) a b = Binop (And, a, b)
end

let truthy = function
  | Value.Null -> false
  | Value.Int 0 -> false
  | Value.Int _ | Value.Float _ | Value.Str _ -> true

let of_bool b = if b then Value.Int 1 else Value.Int 0

let cmp_result op a b =
  match op with
  | Eq -> of_bool (Value.equal a b)
  | Ne -> of_bool (not (Value.is_null a) && not (Value.is_null b) && not (Value.equal a b))
  | Lt | Le | Gt | Ge -> (
      match Value.compare_sql a b with
      | None -> of_bool false
      | Some c ->
          of_bool
            (match op with
            | Lt -> Stdlib.( < ) c 0
            | Le -> Stdlib.( <= ) c 0
            | Gt -> Stdlib.( > ) c 0
            | Ge -> Stdlib.( >= ) c 0
            | Add | Sub | Mul | Div | Eq | Ne | And | Or -> assert false))
  | Add | Sub | Mul | Div | And | Or -> assert false

let compile ~cols expr =
  let index name =
    let t = Table.empty ~cols in
    Table.col_index t name
  in
  let rec go = function
    | Col name ->
        let i = index name in
        fun row -> row.(i)
    | Lit v -> fun _ -> v
    | Binop (And, a, b) ->
        let fa = go a and fb = go b in
        fun row -> of_bool (truthy (fa row) && truthy (fb row))
    | Binop (Or, a, b) ->
        let fa = go a and fb = go b in
        fun row -> of_bool (truthy (fa row) || truthy (fb row))
    | Binop (Add, a, b) ->
        let fa = go a and fb = go b in
        fun row -> Value.add (fa row) (fb row)
    | Binop (Sub, a, b) ->
        let fa = go a and fb = go b in
        fun row -> Value.sub (fa row) (fb row)
    | Binop (Mul, a, b) ->
        let fa = go a and fb = go b in
        fun row -> Value.mul (fa row) (fb row)
    | Binop (Div, a, b) ->
        let fa = go a and fb = go b in
        fun row -> Value.div (fa row) (fb row)
    | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
        let fa = go a and fb = go b in
        fun row -> cmp_result op (fa row) (fb row)
    | Not a ->
        let fa = go a in
        fun row -> of_bool (not (truthy (fa row)))
    | Coalesce es ->
        let fs = List.map go es in
        fun row ->
          let rec first = function
            | [] -> Value.Null
            | f :: tl ->
                let v = f row in
                if Value.is_null v then first tl else v
          in
          first fs
    | Between (x, lo, hi) ->
        let fx = go x and flo = go lo and fhi = go hi in
        fun row ->
          let v = fx row in
          of_bool
            (truthy (cmp_result Ge v (flo row))
            && truthy (cmp_result Le v (fhi row)))
  in
  go expr

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let rec pp ppf = function
  | Col c -> Format.pp_print_string ppf c
  | Lit v -> Value.pp ppf v
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Not a -> Format.fprintf ppf "NOT (%a)" pp a
  | Coalesce es ->
      Format.fprintf ppf "COALESCE(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        es
  | Between (x, lo, hi) ->
      Format.fprintf ppf "(%a BETWEEN %a AND %a)" pp x pp lo pp hi
