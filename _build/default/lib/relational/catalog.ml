type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }
let put t name table = Hashtbl.replace t.tables name table

let find t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %S" name)

let mem t name = Hashtbl.mem t.tables name
let drop t name = Hashtbl.remove t.tables name

let table_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [])

let run_select t query =
  Plan.run ~lookup:(fun name -> find t name) (Sql.plan_query query)

let exec t = function
  | Sql.Create_table (name, cols) ->
      put t name (Table.empty ~cols);
      None
  | Sql.Create_table_as (name, select) ->
      let result = run_select t select in
      put t name result;
      Some result
  | Sql.Insert (name, rows) ->
      let table = find t name in
      let arity = Table.arity table in
      let rows =
        List.map
          (fun vs ->
            if List.length vs <> arity then
              invalid_arg "Catalog: INSERT arity mismatch";
            Array.of_list vs)
          rows
      in
      put t name
        (Table.create ~cols:(Table.cols table) (Table.rows table @ rows));
      None
  | Sql.Drop_table { name; if_exists } ->
      if (not if_exists) && not (mem t name) then
        invalid_arg (Printf.sprintf "Catalog: unknown table %S" name);
      drop t name;
      None
  | Sql.Select_stmt select -> Some (run_select t select)

let exec_sql t src = List.map (exec t) (Sql.parse src)

let query t src =
  match List.rev (exec_sql t src) with
  | Some table :: _ -> table
  | None :: _ | [] ->
      invalid_arg "Catalog.query: last statement returned no table"
