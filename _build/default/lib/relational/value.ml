type t = Null | Int of int | Float of float | Str of string

let is_null = function Null -> true | Int _ | Float _ | Str _ -> false

let as_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Null | Str _ -> None

let equal a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Int a, Int b -> a = b
  | Str a, Str b -> String.equal a b
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> x = y
      | _ -> false)
  | Str _, (Int _ | Float _) | (Int _ | Float _), Str _ -> false

let compare_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int a, Int b -> Some (compare a b)
  | Str a, Str b -> Some (String.compare a b)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Some (Float.compare x y)
      | _ -> None)
  | Str _, (Int _ | Float _) | (Int _ | Float _), Str _ -> None

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 1 | Str _ -> 2

let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | Str x, Str y -> String.compare x y
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Float.compare x y
      | _ -> assert false)
  | _ -> compare (rank a) (rank b)

let arith fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Float (ff x y)
      | _ -> Null)
  | Str _, _ | _, Str _ -> invalid_arg "Value: arithmetic on strings"

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int _, Int 0 -> invalid_arg "Value.div: division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Float _), (Int _ | Float _) -> (
      match (as_float a, as_float b) with
      | Some x, Some y -> Float (x /. y)
      | _ -> Null)
  | Str _, _ | _, Str _ -> invalid_arg "Value: arithmetic on strings"

let as_int = function Int n -> Some n | Null | Float _ | Str _ -> None

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "'%s'" s

let to_string v = Format.asprintf "%a" pp v
