type t = { cols : string list; rows : Value.t array list }

let check_unique cols =
  let sorted = List.sort String.compare cols in
  let rec go = function
    | a :: (b :: _ as tl) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Table: duplicate column %S" a);
        go tl
    | [ _ ] | [] -> ()
  in
  go sorted

let create ~cols rows =
  check_unique cols;
  let arity = List.length cols in
  List.iter
    (fun r ->
      if Array.length r <> arity then
        invalid_arg
          (Printf.sprintf "Table: row arity %d, expected %d" (Array.length r)
             arity))
    rows;
  { cols; rows }

let empty ~cols = create ~cols []
let cols t = t.cols
let rows t = t.rows
let cardinality t = List.length t.rows
let arity t = List.length t.cols

let col_index t name =
  let indexed = List.mapi (fun i c -> (c, i)) t.cols in
  match List.assoc_opt name indexed with
  | Some i -> i
  | None -> (
      let suffix = "." ^ name in
      let matches =
        List.filter
          (fun (c, _) ->
            String.length c > String.length suffix
            && String.ends_with ~suffix c)
          indexed
      in
      match matches with
      | [ (_, i) ] -> i
      | [] -> invalid_arg (Printf.sprintf "Table: unknown column %S" name)
      | _ -> invalid_arg (Printf.sprintf "Table: ambiguous column %S" name))

let rename_cols t names =
  if List.length names <> arity t then
    invalid_arg "Table.rename_cols: arity mismatch";
  create ~cols:names t.rows

let prefix_cols t prefix =
  (* strip any previous qualification so re-aliasing stays readable *)
  let base c =
    match String.rindex_opt c '.' with
    | Some i -> String.sub c (i + 1) (String.length c - i - 1)
    | None -> c
  in
  create ~cols:(List.map (fun c -> prefix ^ "." ^ base c) t.cols) t.rows

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " t.cols);
  List.iter
    (fun r ->
      Format.fprintf ppf "%s@,"
        (String.concat " | "
           (Array.to_list (Array.map Value.to_string r))))
    t.rows;
  Format.fprintf ppf "(%d rows)@]" (cardinality t)
