(** The database: named tables plus a statement executor. *)

type t

val create : unit -> t
val put : t -> string -> Table.t -> unit
val find : t -> string -> Table.t
(** @raise Invalid_argument on an unknown table. *)

val mem : t -> string -> bool
val drop : t -> string -> unit
val table_names : t -> string list

val exec : t -> Sql.stmt -> Table.t option
(** Run one statement; SELECTs return their result, DDL/DML return
    [None].  [CREATE TABLE ... AS] stores and also returns the table. *)

val exec_sql : t -> string -> Table.t option list
(** Parse and run a script. @raise Sql.Error / Invalid_argument. *)

val query : t -> string -> Table.t
(** Run a script whose last statement is a SELECT and return its result.
    @raise Invalid_argument if the last statement returns nothing. *)
