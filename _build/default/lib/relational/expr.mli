(** Scalar expressions over rows.  Booleans are represented as integers
    (0 = false); comparisons involving NULL are false, arithmetic with
    NULL is NULL. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type t =
  | Col of string  (** possibly qualified, resolved by suffix match *)
  | Lit of Value.t
  | Binop of binop * t * t
  | Not of t
  | Coalesce of t list
  | Between of t * t * t

val col : string -> t
val int : int -> t
val str : string -> t

module Infix : sig
  val ( = ) : t -> t -> t
  val ( && ) : t -> t -> t
end

val compile : cols:string list -> t -> Value.t array -> Value.t
(** Resolve column references against [cols] once and return an evaluator.
    @raise Invalid_argument on unknown/ambiguous columns. *)

val truthy : Value.t -> bool
(** NULL and 0 are false. *)

val pp : Format.formatter -> t -> unit
