(** In-memory relations: named columns + rows of values. *)

type t = { cols : string list; rows : Value.t array list }

val create : cols:string list -> Value.t array list -> t
(** @raise Invalid_argument on duplicate column names or arity mismatch. *)

val empty : cols:string list -> t
val cols : t -> string list
val rows : t -> Value.t array list
val cardinality : t -> int
val arity : t -> int

val col_index : t -> string -> int
(** Resolve a possibly-qualified column reference: exact match first, then
    a unique [prefix.name] suffix match.
    @raise Invalid_argument when missing or ambiguous. *)

val rename_cols : t -> string list -> t
val prefix_cols : t -> string -> t
(** [prefix_cols t "a"] renames every column [c] to ["a.c"]. *)

val pp : Format.formatter -> t -> unit
