(** SQL values.  Dynamically typed; NULL comparisons follow a simplified
    two-valued logic (any comparison involving NULL is false, arithmetic
    with NULL is NULL) — enough for the dialect the backend generates. *)

type t = Null | Int of int | Float of float | Str of string

val equal : t -> t -> bool
(** SQL [=]: false when either side is NULL. *)

val compare_sql : t -> t -> int option
(** Ordering for [<], [<=], ...: [None] when either side is NULL or the
    types are incomparable; ints and floats compare numerically. *)

val compare_total : t -> t -> int
(** Total order for ORDER BY / GROUP BY keys: NULL first, then numbers,
    then strings. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

val is_null : t -> bool
val as_int : t -> int option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
