(** A small SQL dialect — the surface language of the Sybase-substitute
    backend.  Supported statements:

    {v
    CREATE TABLE t (c1, c2, ...);           -- untyped columns
    CREATE TABLE t AS SELECT ...;
    INSERT INTO t VALUES (v, ...), (v, ...);
    DROP TABLE [IF EXISTS] t;
    SELECT [DISTINCT] item, ... FROM t [a] [JOIN u [b] ON cond]*
      [WHERE e] [GROUP BY e, ...] [ORDER BY e [ASC|DESC], ...] [LIMIT n];
    v}

    Select items: [*], [expr [AS name]], [MIN/MAX/SUM/COUNT(expr)],
    [COUNT( * )], and [ROWNUM()] (Sybase-identity-style: numbers the rows
    after the ORDER BY — the backend uses it to build corridor group ids
    with [id - rownum]).  Joins recognise equality conditions (hash join)
    and [p BETWEEN lo AND hi] conditions (merge band join). *)

type item =
  | Star
  | Item of Expr.t * string option
  | Agg_item of Plan.agg * string option
  | Rownum_item of string option

type select = {
  distinct : bool;
  items : item list;
  from : (string * string) option;  (** table, alias *)
  joins : (string * string * Expr.t) list;  (** table, alias, ON *)
  where : Expr.t option;
  group_by : Expr.t list;
  order_by : (Expr.t * Plan.order) list;
  limit : int option;
}

type query = select list
(** [UNION ALL] of one or more selects. *)

type stmt =
  | Create_table of string * string list
  | Create_table_as of string * query
  | Insert of string * Value.t list list
  | Drop_table of { name : string; if_exists : bool }
  | Select_stmt of query

exception Error of string

val parse : string -> stmt list
(** Parse a ';'-separated script. @raise Error on syntax errors. *)

val plan_select : select -> Plan.t
(** Compile a SELECT to a physical plan. @raise Error on unsupported
    shapes (e.g. non-grouped select items under GROUP BY). *)

val plan_query : query -> Plan.t

val pp_stmt : Format.formatter -> stmt -> unit
