type t = Cut of int | Gradual of { first : int; last : int }

let detect ?(high = 0.4) ?(low = 0.1) frames =
  let diffs = Cut_detection.differences frames in
  let out = ref [] in
  let i = ref 0 in
  let n = Array.length diffs in
  while !i < n do
    let d = diffs.(!i) in
    if d > high then begin
      out := Cut (!i + 1) :: !out;
      incr i
    end
    else if d > low then begin
      (* candidate gradual transition: accumulate while the step
         difference stays above the low threshold *)
      let start = !i in
      let acc = ref 0. in
      while !i < n && diffs.(!i) > low do
        acc := !acc +. diffs.(!i);
        incr i
      done;
      if !acc > high then
        out := Gradual { first = start + 1; last = !i } :: !out
    end
    else incr i
  done;
  List.rev !out

let boundaries transitions =
  List.map
    (function Cut i -> i | Gradual { last; _ } -> last + 1)
    transitions

let pp ppf = function
  | Cut i -> Format.fprintf ppf "cut@%d" i
  | Gradual { first; last } -> Format.fprintf ppf "gradual@[%d..%d]" first last
