type t = { object_id : int; points : (int * (float * float)) list }

let of_entities frames =
  let tbl : (int, (int * (float * float)) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iteri
    (fun frame_idx entities ->
      List.iter
        (fun (o : Metadata.Entity.t) ->
          match o.bbox with
          | None -> ()
          | Some b ->
              let point = (frame_idx, Metadata.Bbox.center b) in
              let points =
                match Hashtbl.find_opt tbl o.id with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add tbl o.id r;
                    r
              in
              points := point :: !points)
        entities)
    frames;
  Hashtbl.fold
    (fun object_id points acc ->
      { object_id; points = List.rev !points } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.object_id b.object_id)

let dist (x1, y1) (x2, y2) =
  Float.sqrt (((x1 -. x2) ** 2.) +. ((y1 -. y2) ** 2.))

let displacement t =
  match (t.points, List.rev t.points) with
  | (_, first) :: _, (_, last) :: _ -> dist first last
  | [], _ | _, [] -> 0.

let path_length t =
  let rec go = function
    | (_, a) :: ((_, b) :: _ as rest) -> dist a b +. go rest
    | [ _ ] | [] -> 0.
  in
  go t.points

let is_moving ?(eps = 0.5) t = displacement t > eps

let annotate_motion ?eps frames =
  let moving =
    List.filter_map
      (fun t -> if is_moving ?eps t then Some t.object_id else None)
      (of_entities frames)
  in
  Array.map
    (fun entities ->
      List.map
        (fun (o : Metadata.Entity.t) ->
          if List.mem o.id moving && not (List.mem_assoc "moving" o.attrs)
          then
            Metadata.Entity.make ~id:o.id ~otype:o.otype
              ~attrs:(("moving", Metadata.Value.Bool true) :: o.attrs)
              ?bbox:o.bbox ()
          else o)
        entities)
    frames
