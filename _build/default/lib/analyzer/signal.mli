(** Synthetic frame signals.

    The paper's video analyzer box segments real footage with
    cut-detection [21, 11] before meta-data entry.  We have no 1997
    footage, so this module synthesises the signal those detectors
    consume: per-frame colour histograms with a stable per-shot base,
    per-frame noise, and abrupt changes at scripted cut points. *)

type frame = { histogram : float array }

val scripted :
  seed:int ->
  ?bins:int ->
  ?noise:float ->
  shot_lengths:int list ->
  unit ->
  frame array * int list
(** Frames for consecutive shots of the given lengths (each shot gets an
    independent random base histogram) and the ground-truth cut
    positions: the 0-based indices of each shot's first frame except the
    very first.  [noise] (default 0.01) perturbs each frame.
    @raise Invalid_argument on empty or non-positive lengths. *)

val scripted_with_dissolves :
  seed:int ->
  ?bins:int ->
  ?noise:float ->
  ?dissolve:int ->
  shot_lengths:int list ->
  unit ->
  frame array * int list
(** Like {!scripted}, but consecutive shots are joined by [dissolve]
    (default 6) linearly interpolated frames — a gradual transition.
    The returned positions are the 0-based indices where each new shot's
    first clean frame sits (the frame after its dissolve). *)

val l1_distance : float array -> float array -> float
(** Sum of absolute bin differences (histograms are normalised, so the
    result is in [[0, 2]]). *)
