(** Trajectories of tracked objects — the substrate behind the paper's
    motion predicates ("a moving train", reference [23]: finding
    trajectories of feature points in a monocular image sequence).

    A trajectory is the sequence of bounding-box centres one universal
    object id traces through consecutive frames. *)

type t = {
  object_id : int;
  points : (int * (float * float)) list;
      (** (0-based frame index, box centre), in frame order *)
}

val of_entities : Metadata.Entity.t list array -> t list
(** Trajectories of every object appearing (with a bounding box) in the
    per-frame entity lists, ordered by object id. *)

val displacement : t -> float
(** Euclidean distance between the first and last observed centres. *)

val path_length : t -> float
(** Sum of step distances. *)

val is_moving : ?eps:float -> t -> bool
(** Total displacement above [eps] (default 0.5). *)

val annotate_motion :
  ?eps:float -> Metadata.Entity.t list array -> Metadata.Entity.t list array
(** Add [("moving", Bool true)] to every occurrence of each moving object
    — after this, HTL queries like [moving(z) = true] work on analyzed
    footage. *)
