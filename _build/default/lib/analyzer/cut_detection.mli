(** Histogram-difference cut detection (the method of [21, 11] the paper
    cites for segmenting "The Making of the Casablanca" into 50 shots). *)

val differences : Signal.frame array -> float array
(** [differences frames].(i) is the L1 histogram distance between frames
    [i] and [i+1]; length is [Array.length frames - 1]. *)

val detect : ?threshold:float -> Signal.frame array -> int list
(** 0-based indices [i] such that a new shot starts at frame [i]
    (difference between [i-1] and [i] above [threshold], default 0.4). *)

val segment : ?threshold:float -> Signal.frame array -> Signal.frame array list
(** Split the frame sequence into shots at the detected cuts. *)

val score : detected:int list -> truth:int list -> float * float
(** (precision, recall) of a detection against the ground truth; both 1
    when either list is empty and they are equal. *)
