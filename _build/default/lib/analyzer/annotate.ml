let dedup_objects objects =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (o : Metadata.Entity.t) ->
      if Hashtbl.mem seen o.id then false
      else begin
        Hashtbl.add seen o.id ();
        true
      end)
    objects

let build_video ~title ?cut_threshold ?track_distance ~frames ~detections () =
  let n = Array.length frames in
  if n = 0 then invalid_arg "Annotate.build_video: no frames";
  if Array.length detections <> n then
    invalid_arg "Annotate.build_video: frames/detections length mismatch";
  let entities = Tracker.track ?max_distance:track_distance detections in
  let cuts = Cut_detection.detect ?threshold:cut_threshold frames in
  let bounds = (0 :: cuts) @ [ n ] in
  let shots =
    let rec go = function
      | lo :: (hi :: _ as rest) when hi > lo ->
          let frame_segs =
            List.init (hi - lo) (fun k ->
                Video_model.Segment.leaf
                  (Metadata.Seg_meta.make ~objects:entities.(lo + k) ()))
          in
          let shot_objects =
            dedup_objects
              (List.concat
                 (List.init (hi - lo) (fun k -> entities.(lo + k))))
          in
          Video_model.Segment.make
            ~meta:(Metadata.Seg_meta.make ~objects:shot_objects ())
            frame_segs
          :: go rest
      | _ :: rest -> go rest
      | [] -> []
    in
    go bounds
  in
  Video_model.Video.create ~title ~level_names:[ "video"; "shot"; "frame" ]
    (Video_model.Segment.make
       ~meta:(Metadata.Seg_meta.make ~attrs:[ ("title", Metadata.Value.Str title) ] ())
       shots)
