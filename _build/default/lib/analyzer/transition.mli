(** Gradual-transition detection (twin-comparison): abrupt cuts exceed a
    high threshold in one frame step; dissolves and fades accumulate many
    small steps, each above a low threshold, whose sum eventually exceeds
    the high one.  Complements {!Cut_detection} for edited footage (the
    paper cites [11, 21] for segmentation of production video). *)

type t =
  | Cut of int  (** new shot starts at this 0-based frame *)
  | Gradual of { first : int; last : int }
      (** transition frames [first..last]; the new shot starts at
          [last + 1] *)

val detect : ?high:float -> ?low:float -> Signal.frame array -> t list
(** Twin-comparison with [high] (default 0.4) and [low] (default 0.1)
    thresholds, in temporal order.  [low] must sit above the noise floor
    of the signal (roughly [bins * noise]). *)

val boundaries : t list -> int list
(** First-frame indices of the shots the transitions induce (excluding
    frame 0). *)

val pp : Format.formatter -> t -> unit
