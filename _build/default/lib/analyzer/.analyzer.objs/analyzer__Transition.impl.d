lib/analyzer/transition.ml: Array Cut_detection Format List
