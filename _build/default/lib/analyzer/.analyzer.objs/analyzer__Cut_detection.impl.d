lib/analyzer/cut_detection.ml: Array List Signal
