lib/analyzer/signal.mli:
