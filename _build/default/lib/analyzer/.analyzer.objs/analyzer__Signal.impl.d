lib/analyzer/signal.ml: Array Float List Random
