lib/analyzer/transition.mli: Format Signal
