lib/analyzer/annotate.ml: Array Cut_detection Hashtbl List Metadata Tracker Video_model
