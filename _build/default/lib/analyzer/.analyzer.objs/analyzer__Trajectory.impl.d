lib/analyzer/trajectory.ml: Array Float Hashtbl List Metadata
