lib/analyzer/tracker.mli: Metadata
