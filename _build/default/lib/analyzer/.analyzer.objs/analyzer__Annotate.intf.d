lib/analyzer/annotate.mli: Signal Tracker Video_model
