lib/analyzer/tracker.ml: Array Float List Metadata String
