lib/analyzer/trajectory.mli: Metadata
