lib/analyzer/cut_detection.mli: Signal
