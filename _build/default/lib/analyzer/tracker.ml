type detection = { otype : string; bbox : Metadata.Bbox.t }

let center_distance a b =
  let ax, ay = Metadata.Bbox.center a and bx, by = Metadata.Bbox.center b in
  Float.sqrt (((ax -. bx) ** 2.) +. ((ay -. by) ** 2.))

let track ?(max_distance = 2.0) ?(first_id = 1) frames =
  let next_id = ref first_id in
  let prev : (int * detection) list ref = ref [] in
  Array.map
    (fun detections ->
      let available = ref !prev in
      let assigned =
        List.map
          (fun d ->
            (* closest unclaimed same-typed object of the previous frame *)
            let best =
              List.fold_left
                (fun best (id, p) ->
                  if not (String.equal p.otype d.otype) then best
                  else
                    let dist = center_distance p.bbox d.bbox in
                    match best with
                    | Some (_, bd) when bd <= dist -> best
                    | _ when dist <= max_distance -> Some (id, dist)
                    | _ -> best)
                None !available
            in
            let id =
              match best with
              | Some (id, _) ->
                  available := List.filter (fun (i, _) -> i <> id) !available;
                  id
              | None ->
                  let id = !next_id in
                  incr next_id;
                  id
            in
            (id, d))
          detections
      in
      prev := assigned;
      List.map
        (fun (id, d) ->
          Metadata.Entity.make ~id ~otype:d.otype ~bbox:d.bbox ())
        assigned)
    frames
