let differences frames =
  let n = Array.length frames in
  if n <= 1 then [||]
  else
    Array.init (n - 1) (fun i ->
        Signal.l1_distance frames.(i).Signal.histogram
          frames.(i + 1).Signal.histogram)

let detect ?(threshold = 0.4) frames =
  let diffs = differences frames in
  let cuts = ref [] in
  Array.iteri (fun i d -> if d > threshold then cuts := (i + 1) :: !cuts) diffs;
  List.rev !cuts

let segment ?threshold frames =
  let cuts = detect ?threshold frames in
  let n = Array.length frames in
  let bounds = (0 :: cuts) @ [ n ] in
  let rec go = function
    | lo :: (hi :: _ as rest) ->
        Array.sub frames lo (hi - lo) :: go rest
    | [ _ ] | [] -> []
  in
  List.filter (fun shot -> Array.length shot > 0) (go bounds)

let score ~detected ~truth =
  let inter =
    List.length (List.filter (fun c -> List.mem c truth) detected)
  in
  let precision =
    if detected = [] then if truth = [] then 1. else 0.
    else float_of_int inter /. float_of_int (List.length detected)
  in
  let recall =
    if truth = [] then 1.
    else float_of_int inter /. float_of_int (List.length truth)
  in
  (precision, recall)
