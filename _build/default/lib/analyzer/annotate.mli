(** Assembling the hierarchical video from analysis output: cut-detect
    the frame stream into shots, track objects across frames, and build a
    three-level video (video / shot / frame) whose shot meta-data
    aggregates its frames' objects (the paper's "key frame" practice:
    meta-data is associated with the shot as one picture). *)

val build_video :
  title:string ->
  ?cut_threshold:float ->
  ?track_distance:float ->
  frames:Signal.frame array ->
  detections:Tracker.detection list array ->
  unit ->
  Video_model.Video.t
(** @raise Invalid_argument when the arrays' lengths differ or no frames
    are given. *)
