type frame = { histogram : float array }

let normalize h =
  let total = Array.fold_left ( +. ) 0. h in
  if total <= 0. then h else Array.map (fun v -> v /. total) h

let random_base rng bins =
  normalize (Array.init bins (fun _ -> 0.05 +. Random.State.float rng 1.))

let l1_distance_raw a b =
  let acc = ref 0. in
  Array.iteri (fun i v -> acc := !acc +. Float.abs (v -. b.(i))) a;
  !acc

let perturb rng noise base =
  normalize
    (Array.map
       (fun v -> Float.max 0. (v +. (Random.State.float rng (2. *. noise) -. noise)))
       base)

let scripted ~seed ?(bins = 16) ?(noise = 0.01) ~shot_lengths () =
  if shot_lengths = [] then invalid_arg "Signal.scripted: no shots";
  List.iter
    (fun l -> if l < 1 then invalid_arg "Signal.scripted: non-positive length")
    shot_lengths;
  let rng = Random.State.make [| seed; 0x51f15e |] in
  let frames = ref [] and cuts = ref [] and pos = ref 0 in
  let prev_base = ref None in
  (* consecutive shots must look different (that is what makes them
     shots); resample until the base moves far enough *)
  let distinct_base () =
    let rec draw tries =
      let b = random_base rng bins in
      match !prev_base with
      | Some p when tries < 50 && l1_distance_raw p b < 0.6 -> draw (tries + 1)
      | _ -> b
    in
    let b = draw 0 in
    prev_base := Some b;
    b
  in
  List.iteri
    (fun k len ->
      if k > 0 then cuts := !pos :: !cuts;
      let base = distinct_base () in
      for _ = 1 to len do
        frames := { histogram = perturb rng noise base } :: !frames;
        incr pos
      done)
    shot_lengths;
  (Array.of_list (List.rev !frames), List.rev !cuts)

let scripted_with_dissolves ~seed ?(bins = 16) ?(noise = 0.005) ?(dissolve = 6)
    ~shot_lengths () =
  if shot_lengths = [] then
    invalid_arg "Signal.scripted_with_dissolves: no shots";
  List.iter
    (fun l ->
      if l < 1 then invalid_arg "Signal.scripted_with_dissolves: bad length")
    shot_lengths;
  let rng = Random.State.make [| seed; 0xd155 |] in
  let frames = ref [] and starts = ref [] and pos = ref 0 in
  let prev_base = ref None in
  let fresh_base () =
    let rec draw tries =
      let b = random_base rng bins in
      match !prev_base with
      | Some p when tries < 50 && l1_distance_raw p b < 0.8 -> draw (tries + 1)
      | _ -> b
    in
    draw 0
  in
  List.iteri
    (fun k len ->
      let base = fresh_base () in
      (match !prev_base with
      | Some p when k > 0 && dissolve > 0 ->
          (* interpolate from the previous shot's base to the new one *)
          for step = 1 to dissolve do
            let t = float_of_int step /. float_of_int (dissolve + 1) in
            let mixed =
              normalize
                (Array.mapi (fun i v -> ((1. -. t) *. p.(i)) +. (t *. v)) base)
            in
            frames := { histogram = perturb rng noise mixed } :: !frames;
            incr pos
          done
      | _ -> ());
      if k > 0 then starts := !pos :: !starts;
      prev_base := Some base;
      for _ = 1 to len do
        frames := { histogram = perturb rng noise base } :: !frames;
        incr pos
      done)
    shot_lengths;
  (Array.of_list (List.rev !frames), List.rev !starts)

let l1_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Signal.l1_distance: bin counts differ";
  l1_distance_raw a b
