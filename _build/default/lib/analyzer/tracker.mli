(** Greedy nearest-neighbour object tracking.

    §2.2 assumes universal object ids: "once an object is identified in a
    frame of a scene, it is easy to track it in subsequent frames until
    it disappears".  This module provides that substrate: per-frame
    detections (type + bounding box) are associated frame to frame by
    proximity of box centres (same type only); each chain of associations
    receives one universal id. *)

type detection = { otype : string; bbox : Metadata.Bbox.t }

val track :
  ?max_distance:float ->
  ?first_id:int ->
  detection list array ->
  Metadata.Entity.t list array
(** Per-frame entity lists with ids consistent across frames.  A
    detection matches the closest same-typed object of the previous frame
    within [max_distance] (default 2.0) of its centre; unmatched
    detections start new tracks with fresh ids from [first_id]
    (default 1). *)
