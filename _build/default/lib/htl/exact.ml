open Ast
module Store = Video_model.Store
module Interval = Simlist.Interval

type env = {
  objs : (string * int) list;
  attrs : (string * Metadata.Value.t) list;
}

let empty_env = { objs = []; attrs = [] }

let obj_of env x =
  match List.assoc_opt x env.objs with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Exact: unbound object variable %s" x)

let attr_of env y =
  match List.assoc_opt y env.attrs with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Exact: unbound attribute variable %s" y)

let eval_term store ~env ~level ~pos = function
  | Const v -> Some v
  | Attr_var y -> Some (attr_of env y)
  | Obj_attr (q, x) ->
      Metadata.Seg_meta.object_attr (Store.meta store ~level ~id:pos)
        (obj_of env x) q
  | Seg_attr q -> Metadata.Seg_meta.attr (Store.meta store ~level ~id:pos) q

let eval_cmp cmp v1 v2 =
  match cmp with
  | Eq -> Metadata.Value.equal v1 v2
  | Ne -> not (Metadata.Value.equal v1 v2)
  | Lt | Le | Gt | Ge -> (
      match Metadata.Value.compare_num v1 v2 with
      | Some c -> (
          match cmp with
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0
          | Eq | Ne -> assert false)
      | None -> false)

let eval_atom store ~env ~level ~pos = function
  | True -> true
  | False -> false
  | Present x ->
      Metadata.Seg_meta.present (Store.meta store ~level ~id:pos) (obj_of env x)
  | Cmp (cmp, t1, t2) -> (
      match
        ( eval_term store ~env ~level ~pos t1,
          eval_term store ~env ~level ~pos t2 )
      with
      | Some v1, Some v2 -> eval_cmp cmp v1 v2
      | _, _ -> false)
  | Rel (r, args) ->
      Metadata.Seg_meta.has_relationship
        (Store.meta store ~level ~id:pos)
        r
        (List.map (obj_of env) args)

let resolve_level store ~level = function
  | Next_level -> level + 1
  | Level_index i -> i
  | Level_name name -> (
      match Store.level_index store name with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Exact: unknown level %S" name))

let rec holds store ~env ~level ~span ~pos f =
  if not (Interval.contains span pos) then
    invalid_arg "Exact: position outside the proper sequence";
  match f with
  | Atom a -> eval_atom store ~env ~level ~pos a
  | And (f, g) ->
      holds store ~env ~level ~span ~pos f && holds store ~env ~level ~span ~pos g
  | Or (f, g) ->
      holds store ~env ~level ~span ~pos f || holds store ~env ~level ~span ~pos g
  | Not f -> not (holds store ~env ~level ~span ~pos f)
  | Next f ->
      pos + 1 <= Interval.hi span
      && holds store ~env ~level ~span ~pos:(pos + 1) f
  | Until (g, h) ->
      let rec search u =
        if u > Interval.hi span then false
        else if holds store ~env ~level ~span ~pos:u h then true
        else
          holds store ~env ~level ~span ~pos:u g
          && search (u + 1)
      in
      search pos
  | Eventually f ->
      let rec search u =
        u <= Interval.hi span
        && (holds store ~env ~level ~span ~pos:u f || search (u + 1))
      in
      search pos
  | Exists (x, f) ->
      List.exists
        (fun oid ->
          holds store
            ~env:{ env with objs = (x, oid) :: env.objs }
            ~level ~span ~pos f)
        (Store.all_object_ids store)
  | Freeze { var; attr; obj; body } -> (
      let value =
        match obj with
        | Some x ->
            Metadata.Seg_meta.object_attr
              (Store.meta store ~level ~id:pos)
              (obj_of env x) attr
        | None -> Metadata.Seg_meta.attr (Store.meta store ~level ~id:pos) attr
      in
      match value with
      | None -> false
      | Some v ->
          holds store
            ~env:{ env with attrs = (var, v) :: env.attrs }
            ~level ~span ~pos body)
  | At_level (sel, f) -> (
      let target = resolve_level store ~level sel in
      if target <= level then
        invalid_arg "Exact: level operator must descend the hierarchy";
      match Store.descendants_span store ~level ~id:pos ~target with
      | None -> false
      | Some span' ->
          holds store ~env ~level:target ~span:span'
            ~pos:(Interval.lo span') f)

let holds_at store ?(env = empty_env) ~level ~span ~pos f =
  holds store ~env ~level ~span ~pos f

let satisfied_by_video store ~video f =
  (* the root of video [v] has some global id at level 1; its proper
     sequence is just itself *)
  let root_id =
    Interval.lo (Store.video_span store ~video ~level:1)
  in
  holds store ~env:empty_env ~level:1 ~span:(Interval.point root_id)
    ~pos:root_id f

let eval_over_level store ~level f =
  let n = Store.count_at store ~level in
  Array.init n (fun i ->
      let id = i + 1 in
      let v = (Store.node store ~level ~id).Store.video in
      let span = Store.video_span store ~video:v ~level in
      holds store ~env:empty_env ~level ~span ~pos:id f)
