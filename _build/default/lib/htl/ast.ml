type cmp = Eq | Ne | Lt | Le | Gt | Ge

type term =
  | Const of Metadata.Value.t
  | Attr_var of string
  | Obj_attr of string * string
  | Seg_attr of string

type atom =
  | True
  | False
  | Present of string
  | Cmp of cmp * term * term
  | Rel of string * string list

type level_sel = Next_level | Level_index of int | Level_name of string

type t =
  | Atom of atom
  | And of t * t
  | Or of t * t
  | Not of t
  | Next of t
  | Until of t * t
  | Eventually of t
  | Exists of string * t
  | Freeze of freeze
  | At_level of level_sel * t

and freeze = { var : string; attr : string; obj : string option; body : t }

let exists_list vars f = List.fold_right (fun v acc -> Exists (v, acc)) vars f

let rec and_list = function
  | [] -> Atom True
  | [ f ] -> f
  | f :: rest -> And (f, and_list rest)

let atom a = Atom a

let term_obj_vars = function
  | Const _ | Attr_var _ | Seg_attr _ -> []
  | Obj_attr (_, x) -> [ x ]

let term_attr_vars = function
  | Const _ | Obj_attr _ | Seg_attr _ -> []
  | Attr_var y -> [ y ]

let atom_obj_vars = function
  | True | False -> []
  | Present x -> [ x ]
  | Cmp (_, t1, t2) -> term_obj_vars t1 @ term_obj_vars t2
  | Rel (_, args) -> args

let atom_attr_vars = function
  | True | False | Present _ | Rel _ -> []
  | Cmp (_, t1, t2) -> term_attr_vars t1 @ term_attr_vars t2

let remove x l = List.filter (fun v -> v <> x) l

let rec fv_obj = function
  | Atom a -> atom_obj_vars a
  | And (f, g) | Or (f, g) | Until (f, g) -> fv_obj f @ fv_obj g
  | Not f | Next f | Eventually f | At_level (_, f) -> fv_obj f
  | Exists (x, f) -> remove x (fv_obj f)
  | Freeze { obj; body; _ } ->
      Option.to_list obj @ fv_obj body

let rec fv_attr = function
  | Atom a -> atom_attr_vars a
  | And (f, g) | Or (f, g) | Until (f, g) -> fv_attr f @ fv_attr g
  | Not f | Next f | Eventually f | At_level (_, f) -> fv_attr f
  | Exists (_, f) -> fv_attr f
  | Freeze { var; body; _ } -> remove var (fv_attr body)

let free_obj_vars f = List.sort_uniq String.compare (fv_obj f)
let free_attr_vars f = List.sort_uniq String.compare (fv_attr f)
let is_closed f = free_obj_vars f = [] && free_attr_vars f = []

let rec has_temporal = function
  | Atom _ -> false
  | And (f, g) | Or (f, g) -> has_temporal f || has_temporal g
  | Until (_, _) | Next _ | Eventually _ -> true
  | Not f | Exists (_, f) | At_level (_, f) -> has_temporal f
  | Freeze { body; _ } -> has_temporal body

let rec has_level_ops = function
  | Atom _ -> false
  | And (f, g) | Or (f, g) | Until (f, g) ->
      has_level_ops f || has_level_ops g
  | Not f | Next f | Eventually f | Exists (_, f) -> has_level_ops f
  | Freeze { body; _ } -> has_level_ops body
  | At_level (_, _) -> true

let rec has_freeze = function
  | Atom _ -> false
  | And (f, g) | Or (f, g) | Until (f, g) -> has_freeze f || has_freeze g
  | Not f | Next f | Eventually f | Exists (_, f) | At_level (_, f) ->
      has_freeze f
  | Freeze _ -> true

let is_non_temporal f = (not (has_temporal f)) && not (has_level_ops f)

let rec size = function
  | Atom _ -> 1
  | And (f, g) | Or (f, g) | Until (f, g) -> 1 + size f + size g
  | Not f | Next f | Eventually f | Exists (_, f) | At_level (_, f) ->
      1 + size f
  | Freeze { body; _ } -> 1 + size body

let equal_atom (a : atom) (b : atom) = a = b
let equal (a : t) (b : t) = a = b
