open Ast

exception Error of string

type state = { mutable tokens : Lexer.token list }

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let peek st = match st.tokens with [] -> Lexer.EOF | t :: _ -> t

let peek2 st =
  match st.tokens with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.tokens with [] -> () | _ :: tl -> st.tokens <- tl

let expect st token what =
  if peek st = token then advance st
  else fail "expected %s but found %a" what Lexer.pp_token (peek st)

let expect_ident st what =
  match peek st with
  | Lexer.IDENT x ->
      advance st;
      x
  | t -> fail "expected %s but found %a" what Lexer.pp_token t

(* terms ------------------------------------------------------------- *)

let parse_term st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Const (Metadata.Value.Int n)
  | Lexer.FLOAT f ->
      advance st;
      Const (Metadata.Value.Float f)
  | Lexer.STRING s ->
      advance st;
      Const (Metadata.Value.Str s)
  | Lexer.TRUE ->
      advance st;
      Const (Metadata.Value.Bool true)
  | Lexer.FALSE ->
      advance st;
      Const (Metadata.Value.Bool false)
  | Lexer.SEG ->
      advance st;
      expect st Lexer.DOT "'.' after 'seg'";
      Seg_attr (expect_ident st "attribute name")
  | Lexer.IDENT q when peek2 st = Lexer.LPAREN ->
      advance st;
      advance st;
      let x = expect_ident st "object variable" in
      expect st Lexer.RPAREN "')'";
      Obj_attr (q, x)
  | Lexer.IDENT y ->
      advance st;
      Attr_var y
  | t -> fail "expected a term but found %a" Lexer.pp_token t

(* atoms -------------------------------------------------------------- *)

let parse_cmp_tail st t1 =
  match peek st with
  | Lexer.CMP cmp ->
      advance st;
      let t2 = parse_term st in
      Atom (Cmp (cmp, t1, t2))
  | t -> fail "expected a comparison operator but found %a" Lexer.pp_token t

let parse_atom st =
  match peek st with
  | Lexer.TRUE when (match peek2 st with Lexer.CMP _ -> false | _ -> true) ->
      advance st;
      Atom True
  | Lexer.FALSE when (match peek2 st with Lexer.CMP _ -> false | _ -> true) ->
      advance st;
      Atom False
  | Lexer.PRESENT ->
      advance st;
      expect st Lexer.LPAREN "'(' after 'present'";
      let x = expect_ident st "object variable" in
      expect st Lexer.RPAREN "')'";
      Atom (Present x)
  | Lexer.IDENT name when peek2 st = Lexer.LPAREN ->
      (* could be a relation r(x, y, ...) or an attribute term q(x)
         followed by a comparison *)
      advance st;
      advance st;
      let first = expect_ident st "object variable" in
      let rec args acc =
        match peek st with
        | Lexer.COMMA ->
            advance st;
            args (expect_ident st "object variable" :: acc)
        | _ -> List.rev acc
      in
      let arguments = args [ first ] in
      expect st Lexer.RPAREN "')'";
      (match (arguments, peek st) with
      | [ x ], Lexer.CMP _ -> parse_cmp_tail st (Obj_attr (name, x))
      | _, _ -> Atom (Rel (name, arguments)))
  | Lexer.IDENT name when (match peek2 st with Lexer.CMP _ -> false | _ -> true)
    ->
      (* a bare identifier is a nullary (propositional) predicate, like
         the paper's abstract M1, M2, M3 *)
      advance st;
      Atom (Rel (name, []))
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.SEG | Lexer.IDENT _
  | Lexer.TRUE | Lexer.FALSE ->
      let t1 = parse_term st in
      parse_cmp_tail st t1
  | t -> fail "expected an atomic formula but found %a" Lexer.pp_token t

(* formulas ----------------------------------------------------------- *)

let parse_level_spec st =
  match peek st with
  | Lexer.NEXT ->
      advance st;
      expect st Lexer.LEVEL "'level' after 'at next'";
      Next_level
  | Lexer.LEVEL -> (
      advance st;
      match peek st with
      | Lexer.INT i ->
          advance st;
          if i < 1 then fail "level index must be >= 1, got %d" i;
          Level_index i
      | t -> fail "expected a level number but found %a" Lexer.pp_token t)
  | Lexer.IDENT name ->
      advance st;
      expect st Lexer.LEVEL (Printf.sprintf "'level' after 'at %s'" name);
      Level_name name
  | t -> fail "expected a level specification but found %a" Lexer.pp_token t

let rec parse_formula st =
  match peek st with
  | Lexer.EXISTS ->
      advance st;
      let first = expect_ident st "object variable" in
      let rec vars acc =
        match peek st with
        | Lexer.COMMA ->
            advance st;
            vars (expect_ident st "object variable" :: acc)
        | _ -> List.rev acc
      in
      let xs = vars [ first ] in
      expect st Lexer.DOT "'.' after quantified variables";
      exists_list xs (parse_formula st)
  | Lexer.LBRACKET ->
      advance st;
      let var = expect_ident st "attribute variable" in
      expect st Lexer.ARROW "'<-'";
      let attr, obj =
        match peek st with
        | Lexer.SEG ->
            advance st;
            expect st Lexer.DOT "'.' after 'seg'";
            (expect_ident st "attribute name", None)
        | Lexer.IDENT q ->
            advance st;
            expect st Lexer.LPAREN "'(' after attribute function";
            let x = expect_ident st "object variable" in
            expect st Lexer.RPAREN "')'";
            (q, Some x)
        | t ->
            fail "expected an attribute function but found %a" Lexer.pp_token t
      in
      expect st Lexer.RBRACKET "']'";
      Freeze { var; attr; obj; body = parse_formula st }
  | _ -> parse_or st

and parse_or st =
  let left = parse_until st in
  if peek st = Lexer.OR then begin
    advance st;
    Or (left, parse_or st)
  end
  else left

and parse_until st =
  let left = parse_and st in
  if peek st = Lexer.UNTIL then begin
    advance st;
    Until (left, parse_until st)
  end
  else left

and parse_and st =
  let left = parse_prefix st in
  if peek st = Lexer.AND then begin
    advance st;
    And (left, parse_and st)
  end
  else left

and parse_prefix st =
  match peek st with
  | Lexer.EXISTS | Lexer.LBRACKET ->
      (* a quantifier after a binary operator extends as far right as
         possible, as usual *)
      parse_formula st
  | Lexer.NOT ->
      advance st;
      Not (parse_prefix st)
  | Lexer.NEXT ->
      advance st;
      Next (parse_prefix st)
  | Lexer.EVENTUALLY ->
      advance st;
      Eventually (parse_prefix st)
  | Lexer.AT ->
      advance st;
      let sel = parse_level_spec st in
      expect st Lexer.LPAREN "'(' after the level operator";
      let f = parse_formula st in
      expect st Lexer.RPAREN "')'";
      At_level (sel, f)
  | Lexer.LPAREN ->
      advance st;
      let f = parse_formula st in
      expect st Lexer.RPAREN "')'";
      f
  | _ -> parse_atom st

let formula_of_string src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Error (msg, pos) ->
      raise (Error (Printf.sprintf "lexical error at offset %d: %s" pos msg))
  in
  let st = { tokens } in
  let f = parse_formula st in
  (match peek st with
  | Lexer.EOF -> ()
  | t -> fail "trailing input: %a" Lexer.pp_token t);
  f

let formula_of_string_opt src =
  match formula_of_string src with
  | f -> Ok f
  | exception Error msg -> Error msg
