open Ast

let pp_cmp ppf cmp =
  Format.pp_print_string ppf
    (match cmp with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_value ppf (v : Metadata.Value.t) =
  match v with
  | Int n -> Format.pp_print_int ppf n
  | Float f ->
      (* keep a '.' so the token re-lexes as a float, not an int *)
      if Float.is_integer f then Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%.17g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let pp_term ppf = function
  | Const v -> pp_value ppf v
  | Attr_var y -> Format.pp_print_string ppf y
  | Obj_attr (q, x) -> Format.fprintf ppf "%s(%s)" q x
  | Seg_attr q -> Format.fprintf ppf "seg.%s" q

let pp_atom ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Present x -> Format.fprintf ppf "present(%s)" x
  | Cmp (cmp, t1, t2) ->
      Format.fprintf ppf "%a %a %a" pp_term t1 pp_cmp cmp pp_term t2
  | Rel (r, []) -> Format.pp_print_string ppf r
  | Rel (r, args) ->
      Format.fprintf ppf "%s(%s)" r (String.concat ", " args)

let pp_level_sel ppf = function
  | Next_level -> Format.pp_print_string ppf "next level"
  | Level_index i -> Format.fprintf ppf "level %d" i
  | Level_name n -> Format.fprintf ppf "%s level" n

let rec pp ppf = function
  | Atom a -> pp_atom ppf a
  | And (f, g) -> Format.fprintf ppf "(@[%a@ and %a@])" pp f pp g
  | Or (f, g) -> Format.fprintf ppf "(@[%a@ or %a@])" pp f pp g
  | Not f -> Format.fprintf ppf "not (%a)" pp f
  | Next f -> Format.fprintf ppf "next (%a)" pp f
  | Until (f, g) -> Format.fprintf ppf "(@[%a@ until %a@])" pp f pp g
  | Eventually f -> Format.fprintf ppf "eventually (%a)" pp f
  | Exists (x, f) -> Format.fprintf ppf "(exists %s . %a)" x pp f
  | Freeze { var; attr; obj; body } ->
      let target ppf = function
        | Some x -> Format.fprintf ppf "%s(%s)" attr x
        | None -> Format.fprintf ppf "seg.%s" attr
      in
      Format.fprintf ppf "([%s <- %a] %a)" var target obj pp body
  | At_level (sel, f) ->
      Format.fprintf ppf "at %a (%a)" pp_level_sel sel pp f

let to_string f = Format.asprintf "%a" pp f
