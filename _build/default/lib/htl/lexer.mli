(** Tokenizer for the HTL concrete syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EXISTS
  | UNTIL
  | AND
  | OR
  | NOT
  | NEXT
  | EVENTUALLY
  | AT
  | LEVEL
  | PRESENT
  | TRUE
  | FALSE
  | SEG
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW  (** [<-] *)
  | CMP of Ast.cmp
  | EOF

exception Error of string * int
(** message and 0-based character offset *)

val tokenize : string -> token list
(** @raise Error on an unexpected character or unterminated string. *)

val pp_token : Format.formatter -> token -> unit
