lib/htl/pretty.ml: Ast Float Format Metadata String
