lib/htl/ast.ml: List Metadata Option String
