lib/htl/exact.ml: Array Ast List Metadata Printf Simlist Video_model
