lib/htl/ast.mli: Metadata
