lib/htl/pretty.mli: Ast Format
