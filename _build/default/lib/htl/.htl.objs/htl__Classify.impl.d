lib/htl/classify.ml: Ast Format String
