lib/htl/exact.mli: Ast Metadata Simlist Video_model
