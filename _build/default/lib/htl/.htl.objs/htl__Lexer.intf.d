lib/htl/lexer.mli: Ast Format
