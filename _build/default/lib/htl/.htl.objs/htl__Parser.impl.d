lib/htl/parser.ml: Ast Format Lexer List Metadata Printf
