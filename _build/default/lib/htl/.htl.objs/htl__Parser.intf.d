lib/htl/parser.mli: Ast
