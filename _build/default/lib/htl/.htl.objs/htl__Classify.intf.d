lib/htl/classify.mli: Ast Format
