lib/htl/lexer.ml: Ast Buffer Format List Pretty Printf String
