(** Abstract syntax of HTL, the Hierarchical Temporal Logic of §2.2.

    Two kinds of variables: {e object variables} (bound by [exists],
    ranging over universal object ids) and {e attribute variables} (bound
    by the freeze quantifier [[y <- q]], ranging over attribute values).

    [Or] is not part of the paper's language; it is provided for the exact
    (boolean) semantics only and classifies as [General] — the similarity
    engine rejects it. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Terms of the first-order layer. *)
type term =
  | Const of Metadata.Value.t
  | Attr_var of string  (** attribute variable, bound by a freeze *)
  | Obj_attr of string * string  (** [Obj_attr (q, x)] is [q(x)] *)
  | Seg_attr of string  (** attribute of the current segment, [seg.q] *)

(** Atomic (non-temporal) predicates, evaluated on one segment's
    meta-data by the picture retrieval substrate. *)
type atom =
  | True
  | False
  | Present of string  (** [present(x)] *)
  | Cmp of cmp * term * term
  | Rel of string * string list  (** named k-ary predicate over object vars *)

type level_sel =
  | Next_level  (** [at next level] *)
  | Level_index of int  (** [at level i], 1-based, root = 1 *)
  | Level_name of string  (** [at shot level] etc. *)

type t =
  | Atom of atom
  | And of t * t
  | Or of t * t  (** extension; not in the paper's HTL *)
  | Not of t
  | Next of t
  | Until of t * t
  | Eventually of t
  | Exists of string * t
  | Freeze of freeze
  | At_level of level_sel * t

and freeze = {
  var : string;  (** the attribute variable being frozen *)
  attr : string;  (** the attribute function [q] *)
  obj : string option;  (** [Some x] for [q(x)], [None] for [seg.q] *)
  body : t;
}

val exists_list : string list -> t -> t
(** [exists_list [x1; ...; xn] f] is [Exists (x1, ... Exists (xn, f))]. *)

val and_list : t list -> t
(** Right-nested conjunction; [Atom True] for the empty list. *)

val atom : atom -> t

val free_obj_vars : t -> string list
(** Sorted, without duplicates. *)

val free_attr_vars : t -> string list

val is_closed : t -> bool

val has_temporal : t -> bool
(** Contains [Next], [Until] or [Eventually]. *)

val has_level_ops : t -> bool
val has_freeze : t -> bool

val is_non_temporal : t -> bool
(** No temporal and no level modal operators (§2.2): the formula asserts a
    property of a single segment's meta-data. *)

val size : t -> int
(** Number of AST nodes — the paper's formula length [p]. *)

val equal : t -> t -> bool
val equal_atom : atom -> atom -> bool
