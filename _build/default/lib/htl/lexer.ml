type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EXISTS
  | UNTIL
  | AND
  | OR
  | NOT
  | NEXT
  | EVENTUALLY
  | AT
  | LEVEL
  | PRESENT
  | TRUE
  | FALSE
  | SEG
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | ARROW
  | CMP of Ast.cmp

  | EOF

exception Error of string * int

let keyword_of_string = function
  | "exists" -> Some EXISTS
  | "until" -> Some UNTIL
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "next" -> Some NEXT
  | "eventually" -> Some EVENTUALLY
  | "at" -> Some AT
  | "level" -> Some LEVEL
  | "present" -> Some PRESENT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "seg" -> Some SEG
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let pos = ref 0 in
  let peek_at k = if !pos + k < n then Some src.[!pos + k] else None in
  let peek () = peek_at 0 in
  let advance () = incr pos in
  let lex_ident () =
    let start = !pos in
    while (match peek () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    let word = String.sub src start (!pos - start) in
    match keyword_of_string word with Some kw -> kw | None -> IDENT word
  in
  let lex_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let continue () =
      match peek () with
      | Some c when is_digit c -> true
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          true
      | Some ('+' | '-') ->
          (* sign inside an exponent only *)
          !pos > start
          && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')
      | Some _ | None -> false
    in
    while continue () do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> FLOAT f
      | None -> raise (Error (Printf.sprintf "bad float %S" text, start))
    else
      match int_of_string_opt text with
      | Some i -> INT i
      | None -> raise (Error (Printf.sprintf "bad integer %S" text, start))
  in
  let lex_string quote =
    let start = !pos in
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Error ("unterminated string", start))
      | Some c when c = quote ->
          advance ();
          STRING (Buffer.contents buf)
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('\\' as e) | Some ('"' as e) | Some ('\'' as e) ->
              Buffer.add_char buf e;
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, !pos))
          | None -> raise (Error ("unterminated string", start)))
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let rec loop () =
    match peek () with
    | None -> emit EOF
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        loop ()
    | Some c when is_ident_start c ->
        emit (lex_ident ());
        loop ()
    | Some c when is_digit c ->
        emit (lex_number ());
        loop ()
    | Some '-' when (match peek_at 1 with Some c -> is_digit c | None -> false)
      ->
        emit (lex_number ());
        loop ()
    | Some ('"' as q) | Some ('\'' as q) ->
        emit (lex_string q);
        loop ()
    | Some '(' ->
        advance ();
        emit LPAREN;
        loop ()
    | Some ')' ->
        advance ();
        emit RPAREN;
        loop ()
    | Some '[' ->
        advance ();
        emit LBRACKET;
        loop ()
    | Some ']' ->
        advance ();
        emit RBRACKET;
        loop ()
    | Some ',' ->
        advance ();
        emit COMMA;
        loop ()
    | Some '.' ->
        advance ();
        emit DOT;
        loop ()
    | Some '=' ->
        advance ();
        emit (CMP Ast.Eq);
        loop ()
    | Some '!' -> (
        advance ();
        match peek () with
        | Some '=' ->
            advance ();
            emit (CMP Ast.Ne);
            loop ()
        | _ -> raise (Error ("expected '=' after '!'", !pos - 1)))
    | Some '<' -> (
        advance ();
        match peek () with
        | Some '-' ->
            advance ();
            emit ARROW;
            loop ()
        | Some '=' ->
            advance ();
            emit (CMP Ast.Le);
            loop ()
        | _ ->
            emit (CMP Ast.Lt);
            loop ())
    | Some '>' -> (
        advance ();
        match peek () with
        | Some '=' ->
            advance ();
            emit (CMP Ast.Ge);
            loop ()
        | _ ->
            emit (CMP Ast.Gt);
            loop ())
    | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, !pos))
  in
  loop ();
  List.rev !tokens

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %S" s
  | INT n -> Format.fprintf ppf "integer %d" n
  | FLOAT f -> Format.fprintf ppf "float %g" f
  | STRING s -> Format.fprintf ppf "string %S" s
  | EXISTS -> Format.pp_print_string ppf "'exists'"
  | UNTIL -> Format.pp_print_string ppf "'until'"
  | AND -> Format.pp_print_string ppf "'and'"
  | OR -> Format.pp_print_string ppf "'or'"
  | NOT -> Format.pp_print_string ppf "'not'"
  | NEXT -> Format.pp_print_string ppf "'next'"
  | EVENTUALLY -> Format.pp_print_string ppf "'eventually'"
  | AT -> Format.pp_print_string ppf "'at'"
  | LEVEL -> Format.pp_print_string ppf "'level'"
  | PRESENT -> Format.pp_print_string ppf "'present'"
  | TRUE -> Format.pp_print_string ppf "'true'"
  | FALSE -> Format.pp_print_string ppf "'false'"
  | SEG -> Format.pp_print_string ppf "'seg'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACKET -> Format.pp_print_string ppf "'['"
  | RBRACKET -> Format.pp_print_string ppf "']'"
  | COMMA -> Format.pp_print_string ppf "','"
  | DOT -> Format.pp_print_string ppf "'.'"
  | ARROW -> Format.pp_print_string ppf "'<-'"
  | CMP c -> Pretty.pp_cmp ppf c
  | EOF -> Format.pp_print_string ppf "end of input"
