(** Exact (boolean) satisfaction semantics of HTL (§2.3) — the
    non-similarity reference.  Directly recursive over the formula and the
    hierarchy; supports the whole language including [Not] and [Or].
    Intended for tests, examples and as the ground truth that exact
    matches receive full similarity. *)

type env = {
  objs : (string * int) list;  (** object variables -> object ids *)
  attrs : (string * Metadata.Value.t) list;  (** frozen attribute values *)
}

val empty_env : env

val eval_cmp : Ast.cmp -> Metadata.Value.t -> Metadata.Value.t -> bool
(** Comparison on attribute values: [=]/[!=] use {!Metadata.Value.equal};
    the orderings hold only between numeric values. *)

val holds_at :
  Video_model.Store.t ->
  ?env:env ->
  level:int ->
  span:Simlist.Interval.t ->
  pos:int ->
  Ast.t ->
  bool
(** Satisfaction at segment [pos] of the proper sequence covering global
    ids [span] at [level].
    @raise Invalid_argument on an unbound variable, an out-of-range
    position, or an unknown level name. *)

val satisfied_by_video : Video_model.Store.t -> video:int -> Ast.t -> bool
(** §2.3's top-level notion: satisfaction at the root, in the sequence
    consisting of only the root. *)

val eval_over_level :
  Video_model.Store.t -> level:int -> Ast.t -> bool array
(** For every segment at [level] (index = global id - 1): satisfaction at
    that position, with the proper sequence being its video's segments at
    that level. *)
