(** Classification of HTL formulas into the paper's four subclasses
    (§2.5, §3), each with its own retrieval algorithm:

    type (1) ⊂ type (2) ⊂ conjunctive ⊂ extended conjunctive ⊂ general.

    A {e conjunctive} formula has no negation (and no disjunction), no
    level modal operators, every variable bound, and every existential
    quantifier either in the leading prefix or with a temporal-operator-
    free scope.  A {e type (2)} formula is conjunctive without freeze
    quantifiers; a {e type (1)} formula additionally has no temporal
    operator inside any existential scope.  {e Extended conjunctive}
    formulas relax conjunctive by allowing level modal operators. *)

type cls =
  | Type1
  | Type2
  | Conjunctive
  | Extended_conjunctive
  | General

val classify : Ast.t -> cls
(** Smallest class containing the formula. *)

val check : Ast.t -> (cls, string) result
(** Like {!classify} but explains why a formula is only [General]. *)

val subclass : cls -> cls -> bool
(** [subclass a b]: every formula of class [a] also belongs to class [b]. *)

val pp_cls : Format.formatter -> cls -> unit
val cls_to_string : cls -> string
