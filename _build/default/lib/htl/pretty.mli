(** Printing HTL formulas back to the concrete syntax accepted by
    {!Parser} ([Parser.formula_of_string (to_string f)] re-reads [f]
    exactly; binary operators are printed fully parenthesised). *)

val pp_cmp : Format.formatter -> Ast.cmp -> unit
val pp_term : Format.formatter -> Ast.term -> unit
val pp_atom : Format.formatter -> Ast.atom -> unit
val pp : Format.formatter -> Ast.t -> unit
val to_string : Ast.t -> string
