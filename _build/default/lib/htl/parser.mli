(** Recursive-descent parser for the HTL concrete syntax.

    Grammar sketch (binary operators from loosest to tightest: [or],
    [until] (right-associative), [and]; [not]/[next]/[eventually] are
    prefix; comparisons and relations are atoms):

    {v
    f        ::= 'exists' x (',' x)* '.' f
               | '[' y '<-' (q '(' x ')' | 'seg' '.' q) ']' f
               | or-formula
    prefix   ::= 'not' prefix | 'next' prefix | 'eventually' prefix
               | 'at' ('next' 'level' | 'level' INT | NAME 'level') '(' f ')'
               | '(' f ')' | atom
    atom     ::= 'true' | 'false' | 'present' '(' x ')'
               | r '(' x (',' x)* ')'            (named relation)
               | term ('='|'!='|'<'|'<='|'>'|'>=') term
    term     ::= INT | FLOAT | STRING | 'true' | 'false'
               | q '(' x ')' | 'seg' '.' q | y    (attribute variable)
    v} *)

exception Error of string
(** Human-readable syntax error. *)

val formula_of_string : string -> Ast.t
(** @raise Error on any lexical or syntax error. *)

val formula_of_string_opt : string -> (Ast.t, string) result
