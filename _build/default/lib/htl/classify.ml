open Ast

type cls = Type1 | Type2 | Conjunctive | Extended_conjunctive | General

let rank = function
  | Type1 -> 0
  | Type2 -> 1
  | Conjunctive -> 2
  | Extended_conjunctive -> 3
  | General -> 4

let subclass a b = rank a <= rank b

let cls_to_string = function
  | Type1 -> "type (1)"
  | Type2 -> "type (2)"
  | Conjunctive -> "conjunctive"
  | Extended_conjunctive -> "extended conjunctive"
  | General -> "general"

let pp_cls ppf c = Format.pp_print_string ppf (cls_to_string c)


(* No Not/Or anywhere under a conjunctive formula. *)
let rec negation_free = function
  | Atom _ -> true
  | Not _ | Or _ -> false
  | And (f, g) | Until (f, g) -> negation_free f && negation_free g
  | Next f | Eventually f | Exists (_, f) | At_level (_, f) -> negation_free f
  | Freeze { body; _ } -> negation_free body

(* Existential quantifiers must appear in a prefix position — at the very
   beginning, or at the beginning of a level operator's body (that is
   where the extended-conjunctive algorithm re-enters the §3.2 machinery)
   — or scope over non-temporal, level-free subformulas. *)
let rec exists_placement_ok ~prefix = function
  | Atom _ -> true
  | And (f, g) | Or (f, g) | Until (f, g) ->
      exists_placement_ok ~prefix:false f && exists_placement_ok ~prefix:false g
  | Not f | Next f | Eventually f -> exists_placement_ok ~prefix:false f
  | At_level (_, f) -> exists_placement_ok ~prefix:true f
  | Freeze { body; _ } -> exists_placement_ok ~prefix:false body
  | Exists (_, f) ->
      if prefix then exists_placement_ok ~prefix:true f
      else is_non_temporal f && exists_placement_ok ~prefix:false f

(* Does some existential quantifier (prefix included) scope over a
   temporal operator?  Distinguishes type (1) from type (2). *)
let rec exists_over_temporal = function
  | Atom _ -> false
  | And (f, g) | Or (f, g) | Until (f, g) ->
      exists_over_temporal f || exists_over_temporal g
  | Not f | Next f | Eventually f | At_level (_, f) -> exists_over_temporal f
  | Freeze { body; _ } -> exists_over_temporal body
  | Exists (_, f) -> has_temporal f || has_level_ops f || exists_over_temporal f

(* §3.3's restriction: a comparison involving an attribute variable must
   compare it against a constant or an attribute function (so satisfying
   values form a range); two attribute variables may not be compared, and
   [!=] on an attribute variable is not range-representable. *)
let is_attr_var = function Attr_var _ -> true | Const _ | Obj_attr _ | Seg_attr _ -> false

let atom_attr_ok = function
  | True | False | Present _ | Rel _ -> true
  | Cmp (cmp, t1, t2) -> (
      match (is_attr_var t1, is_attr_var t2) with
      | true, true -> false
      | false, false -> true
      | true, false | false, true -> cmp <> Ne)

let rec attr_predicates_ok = function
  | Atom a -> atom_attr_ok a
  | And (f, g) | Or (f, g) | Until (f, g) ->
      attr_predicates_ok f && attr_predicates_ok g
  | Not f | Next f | Eventually f | Exists (_, f) | At_level (_, f) ->
      attr_predicates_ok f
  | Freeze { body; _ } -> attr_predicates_ok body

let check f =
  if not (is_closed f) then
    Error
      (Format.asprintf "formula is not closed (free: %s)"
         (String.concat ", " (free_obj_vars f @ free_attr_vars f)))
  else if not (negation_free f) then
    Error "negation or disjunction is outside every conjunctive class"
  else if not (exists_placement_ok ~prefix:true f) then
    Error
      "an inner existential quantifier scopes over a temporal or level \
       operator"
  else if not (attr_predicates_ok f) then
    Error
      "attribute variables may only be compared with =, <, <=, >, >= \
       against a constant or attribute function"
  else if has_level_ops f then Ok Extended_conjunctive
  else if has_freeze f then Ok Conjunctive
  else if exists_over_temporal f then Ok Type2
  else Ok Type1

let classify f = match check f with Ok c -> c | Error _ -> General
