type t = {
  objects : Entity.t list;
  relationships : Relationship.t list;
  attrs : (string * Value.t) list;
}

let empty = { objects = []; relationships = []; attrs = [] }

let make ?(objects = []) ?(relationships = []) ?(attrs = []) () =
  { objects; relationships; attrs }

let find_object t id = List.find_opt (fun (o : Entity.t) -> o.id = id) t.objects
let present t id = Option.is_some (find_object t id)

let objects_of_type t otype =
  List.filter (fun (o : Entity.t) -> String.equal o.otype otype) t.objects

let object_attr t id name =
  Option.bind (find_object t id) (fun o -> Entity.attr o name)

let has_relationship t name args =
  List.exists
    (fun r -> Relationship.equal r (Relationship.make name args))
    t.relationships

let attr t name = List.assoc_opt name t.attrs

let pp ppf t =
  Format.fprintf ppf "@[<v>objects: %a@,relationships: %a@,attrs: %a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Entity.pp)
    t.objects
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Relationship.pp)
    t.relationships
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (k, v) ->
         Format.fprintf ppf "%s=%a" k Value.pp v))
    t.attrs
