type t = {
  id : int;
  otype : string;
  attrs : (string * Value.t) list;
  bbox : Bbox.t option;
}

let make ~id ~otype ?(attrs = []) ?bbox () = { id; otype; attrs; bbox }

let attr t name =
  match name with
  | "type" -> Some (Value.Str t.otype)
  | "id" -> Some (Value.Int t.id)
  | _ -> List.assoc_opt name t.attrs

let pp ppf t =
  Format.fprintf ppf "@[<h>#%d:%s%a@]" t.id t.otype
    (Format.pp_print_list (fun ppf (k, v) ->
         Format.fprintf ppf " %s=%a" k Value.pp v))
    t.attrs
