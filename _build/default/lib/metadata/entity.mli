(** Objects in the meta-data (the paper's "objects").

    Every object carries a universal object id: the paper assumes that the
    same real-world object receives the same id across all the frames of a
    video (object tracking), so an id is the unit the [present] predicate
    and the existential quantifier range over. *)

type t = {
  id : int;  (** universal object id *)
  otype : string;  (** type name, a node of {!Picture.Taxonomy} *)
  attrs : (string * Value.t) list;  (** e.g. name, height, color *)
  bbox : Bbox.t option;  (** position in the frame, when known *)
}

val make :
  id:int -> otype:string -> ?attrs:(string * Value.t) list ->
  ?bbox:Bbox.t -> unit -> t

val attr : t -> string -> Value.t option
(** Attribute lookup; ["type"] resolves to the object type, ["id"] to the
    object id. *)

val pp : Format.formatter -> t -> unit
