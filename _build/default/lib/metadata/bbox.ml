type t = { x0 : float; y0 : float; x1 : float; y1 : float }

let make ~x0 ~y0 ~x1 ~y1 =
  if x0 > x1 || y0 > y1 then invalid_arg "Bbox.make: inverted box";
  { x0; y0; x1; y1 }

let center t = ((t.x0 +. t.x1) /. 2., (t.y0 +. t.y1) /. 2.)
let width t = t.x1 -. t.x0
let height t = t.y1 -. t.y0
let area t = width t *. height t

let overlaps a b =
  Float.max a.x0 b.x0 <= Float.min a.x1 b.x1
  && Float.max a.y0 b.y0 <= Float.min a.y1 b.y1

let inside a b = a.x0 >= b.x0 && a.x1 <= b.x1 && a.y0 >= b.y0 && a.y1 <= b.y1
let left_of a b = a.x1 < b.x0
let above a b = a.y0 > b.y1
let pp ppf t = Format.fprintf ppf "(%g,%g)-(%g,%g)" t.x0 t.y0 t.x1 t.y1
