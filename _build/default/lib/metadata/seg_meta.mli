(** Meta-data of a single video segment: the objects present, the
    relationships among them, and segment-level attributes (title, type of
    movie, ...).  This is what atomic HTL formulas are evaluated against. *)

type t = {
  objects : Entity.t list;
  relationships : Relationship.t list;
  attrs : (string * Value.t) list;
}

val empty : t

val make :
  ?objects:Entity.t list ->
  ?relationships:Relationship.t list ->
  ?attrs:(string * Value.t) list ->
  unit ->
  t

val find_object : t -> int -> Entity.t option
(** Lookup by universal object id. *)

val present : t -> int -> bool

val objects_of_type : t -> string -> Entity.t list
(** Exact type match (taxonomy-aware matching lives in [Picture]). *)

val object_attr : t -> int -> string -> Value.t option

val has_relationship : t -> string -> int list -> bool

val attr : t -> string -> Value.t option
(** Segment-level attribute. *)

val pp : Format.formatter -> t -> unit
