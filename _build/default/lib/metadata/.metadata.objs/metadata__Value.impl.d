lib/metadata/value.ml: Float Format String
