lib/metadata/relationship.mli: Format
