lib/metadata/seg_meta.ml: Entity Format List Option Relationship String Value
