lib/metadata/bbox.ml: Float Format
