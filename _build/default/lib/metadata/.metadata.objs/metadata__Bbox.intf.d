lib/metadata/bbox.mli: Format
