lib/metadata/relationship.ml: Format List String
