lib/metadata/value.mli: Format
