lib/metadata/seg_meta.mli: Entity Format Relationship Value
