lib/metadata/entity.ml: Bbox Format List Value
