lib/metadata/entity.mli: Bbox Format Value
