(** Attribute values in the extended E-R meta-data model. *)

type t = Int of int | Float of float | Str of string | Bool of bool

val equal : t -> t -> bool

val compare_num : t -> t -> int option
(** Numeric comparison for [Int]/[Float] (mixed allowed); [None] for
    non-numeric operands. *)

val as_int : t -> int option
val as_float : t -> float option
val as_string : t -> string option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
