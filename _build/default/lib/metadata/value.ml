type t = Int of int | Float of float | Str of string | Bool of bool

let equal a b =
  match (a, b) with
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | Str a, Str b -> String.equal a b
  | Bool a, Bool b -> a = b
  | (Int _ | Float _ | Str _ | Bool _), _ -> false

let as_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | Str _ | Bool _ -> None

let compare_num a b =
  match (as_float a, as_float b) with
  | Some x, Some y -> Some (Float.compare x y)
  | _, _ -> None

let as_int = function Int n -> Some n | Float _ | Str _ | Bool _ -> None
let as_string = function Str s -> Some s | Int _ | Float _ | Bool _ -> None

let pp ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let to_string t = Format.asprintf "%a" pp t
