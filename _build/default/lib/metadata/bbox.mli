(** Bounding boxes for objects in a frame, in image coordinates
    (x grows rightward, y grows upward).  Used to derive the spatial
    relationships of the picture retrieval substrate. *)

type t = private { x0 : float; y0 : float; x1 : float; y1 : float }

val make : x0:float -> y0:float -> x1:float -> y1:float -> t
(** @raise Invalid_argument unless [x0 <= x1] and [y0 <= y1]. *)

val center : t -> float * float
val width : t -> float
val height : t -> float
val area : t -> float
val overlaps : t -> t -> bool
val inside : t -> t -> bool
(** [inside a b]: [a] lies entirely within [b]. *)

val left_of : t -> t -> bool
(** [left_of a b]: [a] ends before [b] starts on the x axis. *)

val above : t -> t -> bool
(** [above a b]: [a] starts above [b]'s end on the y axis. *)

val pp : Format.formatter -> t -> unit
