(** Named k-ary relationships among objects in one video segment, e.g.
    [fires_at(3, 7)] or [holds(3, 12)].  Spatial relationships can either
    be stored explicitly or derived from bounding boxes (see
    [Picture.Spatial]). *)

type t = { name : string; args : int list }

val make : string -> int list -> t
val arity : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
