type t = { name : string; args : int list }

let make name args = { name; args }
let arity t = List.length t.args
let equal a b = String.equal a.name b.name && a.args = b.args

let pp ppf t =
  Format.fprintf ppf "%s(%a)" t.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.args
